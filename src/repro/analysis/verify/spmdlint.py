"""``spmdlint`` — static AST lint for SPMD driver code (tier 1).

Models every ``comm.*`` collective call site in a Python source tree
and flags the schedule bugs that silently corrupt or deadlock loosely
synchronous programs (the code shape of the TuckerMPI-style drivers in
:mod:`repro.distributed`):

``SPMD101``
    A collective reachable only under rank-dependent control flow —
    ``if comm.rank == 0: comm.allreduce(...)`` — or a rank-dependent
    early return/raise that makes a *later* collective unreachable for
    some ranks.  Either way part of the group never arrives and the
    collective stalls until the timeout.
``SPMD102``
    Root/kind drift: the two branches of a rank-dependent conditional
    both issue collectives but with different kinds or roots, or a
    ``root=`` argument is itself rank-dependent — the group members
    disagree on the collective they are executing.
``SPMD103``
    A ``comm.send`` with no ``comm.recv`` counterpart anywhere in the
    file (or vice versa), including tag sets that cannot match.
``SPMD104``
    Unseeded RNG inside an SPMD region (``np.random.default_rng()``
    with no seed, or the legacy process-global ``np.random.*`` /
    ``random.*`` functions): replicated decisions derived from it
    diverge across ranks, desynchronizing the collective schedule.
``SPMD105``
    A ``SharedMemory`` handle that escapes the creating function
    (returned, or stored on an attribute/container) without a
    ``close()``/``unlink()`` in the same scope — the lifecycle can no
    longer be audited locally.  Sanctioned pool code annotates the
    site with ``# spmdlint: ignore[SPMD105]``.
``SPMD106``
    A phase-tag string literal outside the shared vocabulary
    (``repro.vmpi.trace.PHASES``): a ``phase=`` argument or default, a
    ``<x>.phase = "..."`` assignment, or the first argument of a
    cost-ledger charge (``.compute/.sequential/.comm/.gather``).  The
    trace lanes, the span profiler, and the measured-vs-modeled
    attribution all join on these names, so a drifted literal silently
    drops time from every report.  The empty string (untagged) is
    allowed; non-literal tags (f-strings, variables) are not checked.

The linter is heuristic by design: it tracks rank taint through simple
assignments (``me = comm.rank``, ``coords = grid.coords(comm.rank)``)
but does not do inter-procedural analysis.  The replicated-payload
idiom — preparing a rank-dependent payload inside a branch and calling
the collective *outside* it — is deliberately clean::

    payload = build() if comm.rank == 0 else None
    payload = comm.bcast(payload, root=0)   # every rank calls this

Inline suppression: ``# spmdlint: ignore[SPMD101,SPMD105]`` (or a bare
``# spmdlint: ignore``) on the flagged line.
"""

from __future__ import annotations

import ast
import importlib
import re
from pathlib import Path

from repro.analysis.verify.rules import Baseline, Finding, filter_findings

__all__ = ["COLLECTIVES", "P2P_OPS", "lint_paths", "lint_source"]

#: The collective subset of the mini-MPI communicator API.
COLLECTIVES = frozenset(
    {"allreduce", "reduce_scatter", "allgather", "bcast", "gather", "barrier"}
)

#: Point-to-point operations (matched per file by SPMD103).
P2P_OPS = frozenset({"send", "recv"})

#: Rooted collectives whose ``root`` argument SPMD102 compares.
_ROOTED = frozenset({"bcast", "gather"})

#: Cost-ledger charge methods whose first argument is a phase tag
#: (``ledger.comm("gram_comm", ...)``; ``comm.gather(payload, root)``
#: never passes a string literal first, so the overlap is harmless).
_LEDGER_CHARGES = frozenset({"compute", "sequential", "comm", "gather"})

_PHASES_CACHE: frozenset[str] | None = None


def _phase_vocabulary() -> frozenset[str]:
    """The shared phase vocabulary, ``repro.vmpi.trace.PHASES``.

    Imported dynamically: the verify package is a strict-typing island
    (``mypy --strict`` in CI) and must not pull the numeric stack into
    its build just to read one frozenset of strings.
    """
    global _PHASES_CACHE
    if _PHASES_CACHE is None:
        mod = importlib.import_module("repro.vmpi.trace")
        phases = mod.PHASES
        assert isinstance(phases, frozenset)
        _PHASES_CACHE = frozenset(str(p) for p in phases)
    return _PHASES_CACHE

#: Names a communicator object may travel under.
_COMM_NAMES = frozenset({"comm"})

_PRAGMA = re.compile(r"#\s*spmdlint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")

#: Legacy process-global RNG entry points (always unseeded per-process).
_GLOBAL_RNG = re.compile(
    r"^(np|numpy)\.random\.(rand|randn|random|randint|random_sample|"
    r"choice|permutation|shuffle|normal|uniform|standard_normal)$"
    r"|^random\.(random|randint|randrange|choice|shuffle|uniform|"
    r"sample|gauss)$"
)


def _attr_chain(node: ast.AST) -> str:
    """Dotted-name text of an attribute chain (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_comm_value(node: ast.AST) -> bool:
    """True when ``node`` denotes a communicator (``comm``,
    ``self.comm``, ``engine.comm``, ...)."""
    if isinstance(node, ast.Name):
        return node.id in _COMM_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _COMM_NAMES
    return False


def _collective_kind(node: ast.Call) -> str | None:
    """The collective name when ``node`` is ``<comm>.<collective>()``."""
    fn = node.func
    if (
        isinstance(fn, ast.Attribute)
        and fn.attr in COLLECTIVES
        and _is_comm_value(fn.value)
    ):
        return fn.attr
    return None


def _p2p_kind(node: ast.Call) -> str | None:
    fn = node.func
    if (
        isinstance(fn, ast.Attribute)
        and fn.attr in P2P_OPS
        and _is_comm_value(fn.value)
    ):
        return fn.attr
    return None


def _mentions_rank(node: ast.AST, tainted: frozenset[str]) -> bool:
    """Does an expression depend on the caller's rank?

    True for ``comm.rank`` / ``<x>.comm.rank`` attribute reads and for
    any name in the taint set.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            if _is_comm_value(sub.value):
                return True
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
    return False


def _rank_taint(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    """Names assigned (directly or transitively) from ``comm.rank``.

    One forward pass in source order over simple single-target
    assignments — enough for the ``me = comm.rank`` and
    ``coords = grid.coords(comm.rank)`` idioms.
    """
    tainted: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        if value is None or len(targets) != 1:
            continue
        target = targets[0]
        if isinstance(target, ast.Name) and _mentions_rank(
            value, frozenset(tainted)
        ):
            tainted.add(target.id)
    return frozenset(tainted)


def _rng_call(node: ast.Call) -> str | None:
    """SPMD104 classification of an RNG call, or ``None``."""
    chain = _attr_chain(node.func)
    if chain.endswith("default_rng") and not node.args and not node.keywords:
        return "np.random.default_rng() without a seed"
    if _GLOBAL_RNG.match(chain):
        return f"process-global RNG call {chain}()"
    return None


class _CollectiveSite:
    """One collective call site with its rank-dependence context."""

    def __init__(
        self, kind: str, node: ast.Call, rank_dep: bool, root_text: str | None
    ) -> None:
        self.kind = kind
        self.node = node
        self.rank_dep = rank_dep
        self.root_text = root_text


def _root_arg(kind: str, node: ast.Call) -> ast.expr | None:
    """The ``root`` argument of a rooted collective call, if present."""
    if kind not in _ROOTED:
        return None
    for kw in node.keywords:
        if kw.arg == "root":
            return kw.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


class _FunctionLinter(ast.NodeVisitor):
    """Walk one function body tracking rank-dependent control flow."""

    def __init__(
        self,
        linter: "_ModuleLinter",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        is_spmd: bool,
    ) -> None:
        self.linter = linter
        self.fn = fn
        self.is_spmd = is_spmd
        self.tainted = _rank_taint(fn)
        #: depth of enclosing rank-dependent branches
        self._rank_depth = 0
        #: when inside a rank-dep If that has collectives in both
        #: branches, SPMD102 owns the diagnosis — SPMD101 stands down.
        self._suppress_101 = 0
        #: (line, col) of rank-dependent early exits seen so far
        self._early_exits: list[tuple[int, str]] = []
        #: collectives in source order: (line, rank_dep)
        self._ordered: list[tuple[int, bool]] = []

    # -- collection helpers -------------------------------------------------

    def _collect_collectives(
        self, nodes: list[ast.stmt]
    ) -> list[_CollectiveSite]:
        """Collective calls in a branch subtree (shallow convenience)."""
        out: list[_CollectiveSite] = []
        for stmt in nodes:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    kind = _collective_kind(sub)
                    if kind is not None:
                        root = _root_arg(kind, sub)
                        out.append(
                            _CollectiveSite(
                                kind,
                                sub,
                                True,
                                None
                                if root is None
                                else ast.unparse(root),
                            )
                        )
        return out

    # -- statement visitors -------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        rank_dep = _mentions_rank(node.test, self.tainted)
        if not rank_dep:
            self.generic_visit(node)
            return
        body_c = self._collect_collectives(node.body)
        else_c = self._collect_collectives(node.orelse)
        both = bool(body_c) and bool(else_c)
        if both:
            # Both branches communicate: compare the schedules.
            sig_a = [(c.kind, c.root_text) for c in body_c]
            sig_b = [(c.kind, c.root_text) for c in else_c]
            if sig_a != sig_b:
                self.linter.add(
                    "SPMD102",
                    node,
                    "branches of a rank-dependent conditional issue "
                    f"diverging collective schedules {sig_a} vs {sig_b} — "
                    "group members will disagree on the matched collective",
                )
        self._rank_depth += 1
        if both:
            self._suppress_101 += 1
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        if both:
            self._suppress_101 -= 1
        self._rank_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._visit_rank_loop(node, node.test)

    def visit_For(self, node: ast.For) -> None:
        self._visit_rank_loop(node, node.iter)

    def _visit_rank_loop(
        self, node: ast.While | ast.For, ctrl: ast.expr
    ) -> None:
        rank_dep = _mentions_rank(ctrl, self.tainted)
        if rank_dep:
            self._rank_depth += 1
        self.generic_visit(node)
        if rank_dep:
            self._rank_depth -= 1

    def _note_early_exit(self, node: ast.stmt, what: str) -> None:
        if self._rank_depth > 0:
            self._early_exits.append((node.lineno, what))

    def visit_Return(self, node: ast.Return) -> None:
        self._note_early_exit(node, "return")
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        self._note_early_exit(node, "raise")
        self.generic_visit(node)

    def visit_Break(self, node: ast.Break) -> None:
        self._note_early_exit(node, "break")

    def visit_Continue(self, node: ast.Continue) -> None:
        self._note_early_exit(node, "continue")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.linter.lint_function(node)  # nested: fresh context

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.linter.lint_function(node)

    # -- call sites ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        kind = _collective_kind(node)
        if kind is not None:
            self._check_collective(kind, node)
        else:
            p2p = _p2p_kind(node)
            if p2p is not None:
                self.linter.note_p2p(p2p, node)
            elif self.is_spmd:
                reason = _rng_call(node)
                if reason is not None:
                    self.linter.add(
                        "SPMD104",
                        node,
                        f"{reason} inside an SPMD region — replicated "
                        "decisions will diverge across ranks; seed it "
                        "identically on every rank",
                    )
        self.generic_visit(node)

    def _check_collective(self, kind: str, node: ast.Call) -> None:
        rank_dep = self._rank_depth > 0
        self._ordered.append((node.lineno, rank_dep))
        if rank_dep and not self._suppress_101:
            self.linter.add(
                "SPMD101",
                node,
                f"comm.{kind}() is reachable only under rank-dependent "
                "control flow — ranks outside the branch never join the "
                "collective and the group stalls until the timeout",
            )
        root = _root_arg(kind, node)
        if root is not None and _mentions_rank(root, self.tainted):
            self.linter.add(
                "SPMD102",
                node,
                f"comm.{kind}() root argument {ast.unparse(root)!r} is "
                "rank-dependent — group members will name different roots",
            )

    # -- post pass ----------------------------------------------------------

    def finish(self) -> None:
        """Rank-dependent early exits that strand a later collective."""
        for line, what in self._early_exits:
            later = [
                c_line
                for c_line, c_rank_dep in self._ordered
                if c_line > line and not c_rank_dep
            ]
            if later:
                self.linter.add_at(
                    "SPMD101",
                    line,
                    f"rank-dependent early {what} skips the collective at "
                    f"line {later[0]} on some ranks — the remaining group "
                    "members stall until the timeout",
                )


class _ModuleLinter:
    """Per-file lint state: findings, pragmas, p2p bookkeeping."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: list[Finding] = []
        self._sends: list[tuple[int, str | None]] = []
        self._recvs: list[tuple[int, str | None]] = []

    # -- finding emission ---------------------------------------------------

    def _suppressed(self, line: int, rule_id: str) -> bool:
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        m = _PRAGMA.search(text)
        if m is None:
            return False
        ids = m.group(1)
        if ids is None:
            return True
        return rule_id in {s.strip() for s in ids.split(",")}

    def add(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.add_at(rule_id, getattr(node, "lineno", 1), message)

    def add_at(self, rule_id: str, line: int, message: str) -> None:
        if self._suppressed(line, rule_id):
            return
        source = (
            self.lines[line - 1].strip()
            if 0 < line <= len(self.lines)
            else ""
        )
        self.findings.append(
            Finding(rule_id, self.path, line, message, source)
        )

    # -- p2p matching (file scope) ------------------------------------------

    @staticmethod
    def _tag_text(node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "tag":
                return ast.unparse(kw.value)
        # positional: send(dest, payload, tag) / recv(src, tag)
        fn = node.func
        attr = fn.attr if isinstance(fn, ast.Attribute) else ""
        idx = 2 if attr == "send" else 1
        if len(node.args) > idx:
            return ast.unparse(node.args[idx])
        return None  # default tag 0

    def note_p2p(self, kind: str, node: ast.Call) -> None:
        entry = (node.lineno, self._tag_text(node))
        (self._sends if kind == "send" else self._recvs).append(entry)

    def finish_p2p(self) -> None:
        if self._sends and not self._recvs:
            for line, _ in self._sends:
                self.add_at(
                    "SPMD103",
                    line,
                    "comm.send() with no comm.recv() anywhere in this "
                    "file — the message is never consumed (shm segments "
                    "stay in flight; verify mode reports the leak)",
                )
        if self._recvs and not self._sends:
            for line, _ in self._recvs:
                self.add_at(
                    "SPMD103",
                    line,
                    "comm.recv() with no comm.send() anywhere in this "
                    "file — the wait can only end in a timeout",
                )
        if self._sends and self._recvs:
            # Literal tag sets that cannot overlap are still a mismatch.
            def literals(entries: list[tuple[int, str | None]]) -> set[str]:
                return {t if t is not None else "0" for _, t in entries}

            sent, recvd = literals(self._sends), literals(self._recvs)
            if (
                all(t.isdigit() for t in sent | recvd)
                and not sent & recvd
            ):
                line = self._sends[0][0]
                self.add_at(
                    "SPMD103",
                    line,
                    f"send tags {sorted(sent)} and recv tags "
                    f"{sorted(recvd)} cannot match",
                )

    # -- shm lifecycle (SPMD105) --------------------------------------------

    def lint_shm(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        created: dict[str, int] = {}
        closed: set[str] = set()
        escaped: dict[str, int] = {}
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn:
                    continue
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                chain = _attr_chain(node.value.func)
                if chain.endswith("SharedMemory"):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            created[target.id] = node.lineno
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ("close", "unlink") and isinstance(
                    node.func.value, ast.Name
                ):
                    closed.add(node.func.value.id)
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id in created:
                        escaped.setdefault(sub.id, node.lineno)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        for sub in ast.walk(node.value):
                            if (
                                isinstance(sub, ast.Name)
                                and sub.id in created
                            ):
                                escaped.setdefault(sub.id, node.lineno)
        for name, line in escaped.items():
            if name in closed:
                continue
            self.add_at(
                "SPMD105",
                line,
                f"SharedMemory handle {name!r} escapes "
                f"{fn.name}() without a close()/unlink() in the same "
                "scope — its lifecycle can no longer be audited locally "
                "(annotate sanctioned pool code with "
                "'# spmdlint: ignore[SPMD105]')",
            )

    # -- phase vocabulary (SPMD106) -----------------------------------------

    def _check_phase(self, value: str, node: ast.expr, where: str) -> None:
        if value == "":  # untagged is always allowed
            return
        if value in _phase_vocabulary():
            return
        self.add(
            "SPMD106",
            node,
            f"phase tag {value!r} ({where}) is not in the shared "
            "vocabulary repro.vmpi.trace.PHASES — trace lanes, the span "
            "profiler, and the measured-vs-modeled attribution join on "
            "these names, so a drifted literal silently drops time from "
            "every report; add it to PHASES or fix the spelling",
        )

    def lint_phases(self) -> None:
        """Flag phase-tag string literals outside the PHASES vocabulary."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "phase"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        self._check_phase(
                            kw.value.value, kw.value, "phase= argument"
                        )
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in _LEDGER_CHARGES
                    and node.args
                ):
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        self._check_phase(
                            first.value, first, f"{fn.attr}() charge"
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                a = node.args
                pos = list(a.posonlyargs) + list(a.args)
                for arg, default in zip(
                    pos[len(pos) - len(a.defaults) :], a.defaults
                ):
                    if (
                        arg.arg == "phase"
                        and isinstance(default, ast.Constant)
                        and isinstance(default.value, str)
                    ):
                        self._check_phase(
                            default.value, default, "phase default"
                        )
                for arg, default in zip(a.kwonlyargs, a.kw_defaults):
                    if (
                        default is not None
                        and arg.arg == "phase"
                        and isinstance(default, ast.Constant)
                        and isinstance(default.value, str)
                    ):
                        self._check_phase(
                            default.value, default, "phase default"
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "phase"
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        self._check_phase(
                            node.value.value,
                            node.value,
                            "phase attribute assignment",
                        )

    # -- driving ------------------------------------------------------------

    @staticmethod
    def _is_spmd_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """An SPMD region: any parameter named/annotated as a comm."""
        args = fn.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if a.arg in _COMM_NAMES:
                return True
            if a.annotation is not None and "Comm" in ast.unparse(
                a.annotation
            ):
                return True
        return False

    def lint_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        walker = _FunctionLinter(self, fn, self._is_spmd_function(fn))
        for stmt in fn.body:
            walker.visit(stmt)
        walker.finish()
        self.lint_shm(fn)

    def run(self) -> list[Finding]:
        # Top-level and class-level functions get a fresh context each;
        # nested defs are dispatched by the walker itself.
        def _scan(body: list[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self.lint_function(stmt)
                elif isinstance(stmt, ast.ClassDef):
                    _scan(stmt.body)

        _scan(self.tree.body)
        self.finish_p2p()
        self.lint_phases()
        self.findings.sort(key=lambda f: (f.line, f.rule_id))
        return self.findings


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one source string; returns findings in line order."""
    tree = ast.parse(source, filename=path)
    return _ModuleLinter(path, source, tree).run()


def lint_paths(
    paths: list[str | Path],
    *,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Lint files and directories (``.py`` files, recursively)."""
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_source(f.read_text(), str(f)))
    return filter_findings(
        findings, select=select, ignore=ignore, baseline=baseline
    )
