"""Shared rule registry of the SPMD correctness analyzer.

Both tiers of :mod:`repro.analysis.verify` — the static AST lint
(:mod:`~repro.analysis.verify.spmdlint`) and the runtime
collective-matching verifier (:mod:`~repro.analysis.verify.runtime`)
— draw their rule IDs, severities, and one-line summaries from the
single table below, so ``repro lint --list-rules`` documents the whole
contract and CI can assert "0 static findings, 0 dynamic mismatches"
against one vocabulary.

Static rules (``SPMD1xx``) are reported as :class:`Finding` records
with a ``file:line``; dynamic rules (``SPMD2xx``) surface as typed
exceptions carrying the rule ID (see the runtime module).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Baseline",
    "Finding",
    "RULES",
    "Rule",
    "Severity",
    "filter_findings",
    "rule",
]


#: Severity vocabulary.  ``error`` findings fail ``repro lint``;
#: ``warning`` findings fail only under ``--strict``.
Severity = str

STATIC = "static"
DYNAMIC = "dynamic"


@dataclass(frozen=True)
class Rule:
    """One entry of the analyzer's rule catalog."""

    id: str
    tier: str  # "static" | "dynamic"
    severity: Severity  # "error" | "warning"
    summary: str


_RULE_TABLE: tuple[Rule, ...] = (
    # -- tier 1: static AST lint -------------------------------------------
    Rule(
        "SPMD101",
        STATIC,
        "error",
        "collective reachable only under rank-dependent control flow",
    ),
    Rule(
        "SPMD102",
        STATIC,
        "error",
        "collective root/op argument drifts across ranks or branches",
    ),
    Rule(
        "SPMD103",
        STATIC,
        "error",
        "point-to-point send/recv with no matching counterpart",
    ),
    Rule(
        "SPMD104",
        STATIC,
        "warning",
        "unseeded or process-global RNG use inside an SPMD region",
    ),
    Rule(
        "SPMD105",
        STATIC,
        "warning",
        "shared-memory handle escapes its pool scope without close/unlink",
    ),
    Rule(
        "SPMD106",
        STATIC,
        "warning",
        "phase tag literal outside the shared PHASES vocabulary",
    ),
    # -- tier 1b: whole-program protocol model checker ----------------------
    Rule(
        "SPMD121",
        STATIC,
        "error",
        "loop trip count around collectives diverges across ranks",
    ),
    Rule(
        "SPMD122",
        STATIC,
        "error",
        "rank-dependent conditional collective without a matching arm",
    ),
    Rule(
        "SPMD123",
        STATIC,
        "error",
        "phase tag differs across ranks at a matched protocol position",
    ),
    Rule(
        "SPMD124",
        STATIC,
        "error",
        "p2p tag collides with a reserved control-plane namespace",
    ),
    Rule(
        "SPMD125",
        STATIC,
        "error",
        "unmatched send/recv in the whole-program protocol",
    ),
    Rule(
        "SPMD126",
        STATIC,
        "error",
        "protocol event issued after the rank's shutdown point",
    ),
    # -- tier 2: runtime verifier ------------------------------------------
    Rule(
        "SPMD201",
        DYNAMIC,
        "error",
        "collective signature mismatch across group members",
    ),
    Rule(
        "SPMD202",
        DYNAMIC,
        "error",
        "collective sequence diverged (skipped or reordered call)",
    ),
    Rule(
        "SPMD203",
        DYNAMIC,
        "error",
        "deadlock cycle in the in-flight wait-for graph",
    ),
    Rule(
        "SPMD211",
        DYNAMIC,
        "error",
        "shm segment reused while a peer may still read it",
    ),
    Rule(
        "SPMD212",
        DYNAMIC,
        "error",
        "shm segment released twice (duplicated credit message)",
    ),
    Rule(
        "SPMD213",
        DYNAMIC,
        "error",
        "shm segment still in flight at rank exit (leak)",
    ),
    # -- tier 2: happens-before race sanitizer ------------------------------
    Rule(
        "SPMD221",
        DYNAMIC,
        "error",
        "write-write race on a shared buffer (no happens-before order)",
    ),
    Rule(
        "SPMD222",
        DYNAMIC,
        "error",
        "read-write race on a shared buffer (no happens-before order)",
    ),
    Rule(
        "SPMD223",
        DYNAMIC,
        "error",
        "two threads concurrently inside one transport endpoint",
    ),
)

RULES: dict[str, Rule] = {r.id: r for r in _RULE_TABLE}


def rule(rule_id: str) -> Rule:
    """Look up a rule by ID (raises ``KeyError`` on unknown IDs)."""
    return RULES[rule_id]


@dataclass(frozen=True)
class Finding:
    """One static-lint finding, pinned to a ``file:line``.

    ``source`` carries the stripped source line the finding anchors to;
    it feeds the line-number-insensitive baseline fingerprint.
    """

    rule_id: str
    path: str
    line: int
    message: str
    source: str = ""

    @property
    def severity(self) -> Severity:
        return RULES[self.rule_id].severity

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule_id} "
            f"{self.severity}: {self.message}"
        )

    def fingerprint(self) -> str:
        """Stable identity for baselining: file + rule + source text
        (not the line number, which churns on unrelated edits)."""
        key = f"{self.path}:{self.rule_id}:{self.source}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]


class Baseline:
    """A set of accepted finding fingerprints persisted as JSON."""

    def __init__(self, fingerprints: set[str] | None = None) -> None:
        self.fingerprints = set(fingerprints or ())

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        return cls(set(data.get("fingerprints", ())))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(
                {"version": 1, "fingerprints": sorted(self.fingerprints)},
                indent=2,
            )
            + "\n"
        )

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls({f.fingerprint() for f in findings})

    def accepts(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints


def filter_findings(
    findings: list[Finding],
    *,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Apply ``--select`` / ``--ignore`` / baseline filtering."""
    out: list[Finding] = []
    for f in findings:
        if select is not None and f.rule_id not in select:
            continue
        if ignore is not None and f.rule_id in ignore:
            continue
        if baseline is not None and baseline.accepts(f):
            continue
        out.append(f)
    return out
