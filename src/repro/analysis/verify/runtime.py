"""Tier 2 — runtime verification logic for the mini-MPI stack.

Pure logic only: signature matching, wait-for-graph cycle detection,
and the shm lifecycle state machine.  The wiring — stamping each
collective, shipping signatures over the control channel, registering
waits — lives in :mod:`repro.vmpi.mp_comm` behind
``CommConfig(verify=True)`` and imports this module lazily, so nothing
here may import from :mod:`repro.vmpi`.

Errors are plain ``RuntimeError`` subclasses carrying their rule ID
(see :mod:`repro.analysis.verify.rules`) and a preformatted message, so
they survive the pickling round trip through the worker result queue
with full fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, MutableSequence

__all__ = [
    "CollectiveMismatchError",
    "CollectiveSignature",
    "DeadlockError",
    "ShmLifecycleError",
    "ShmSanitizer",
    "VerifyError",
    "WaitMonitor",
    "match_signatures",
    "summarize_mismatch",
]


class VerifyError(RuntimeError):
    """Base class for dynamic-verifier findings.

    ``rule_id`` names the violated rule from the shared registry.
    """

    rule_id: str = "SPMD200"

    def __init__(self, message: str, *, rule_id: str | None = None) -> None:
        if rule_id is not None:
            self.rule_id = rule_id
        super().__init__(f"[{self.rule_id}] {message}")


class CollectiveMismatchError(VerifyError):
    """Group members disagreed on a matched collective (SPMD201/202)."""

    rule_id = "SPMD201"


class DeadlockError(VerifyError):
    """A stable cycle in the in-flight wait-for graph (SPMD203)."""

    rule_id = "SPMD203"


class ShmLifecycleError(VerifyError):
    """A pooled shm segment broke its lifecycle contract (SPMD21x)."""

    rule_id = "SPMD211"


@dataclass(frozen=True)
class CollectiveSignature:
    """What one rank believes about one matched collective.

    Shipped between ranks over the counter-neutral control channel, so
    it must stay cheaply picklable (plain strings and ints only).
    """

    kind: str
    seq: int
    op: str = ""
    root: int = -1
    axis: int = -1
    dtype: str = ""
    shape: tuple[int, ...] = ()
    call_site: str = ""

    def describe(self) -> str:
        parts = [f"{self.kind}#{self.seq}"]
        if self.op:
            parts.append(f"op={self.op}")
        if self.root >= 0:
            parts.append(f"root={self.root}")
        if self.axis >= 0:
            parts.append(f"axis={self.axis}")
        if self.dtype:
            parts.append(f"dtype={self.dtype}")
        if self.shape:
            parts.append(f"shape={self.shape}")
        if self.call_site:
            parts.append(f"at {self.call_site}")
        return " ".join(parts)


def _disagree(
    sigs: dict[int, CollectiveSignature], attr: str
) -> tuple[int, int] | None:
    """First pair of ranks disagreeing on ``attr`` (lowest rank wins)."""
    ranks = sorted(sigs)
    ref = getattr(sigs[ranks[0]], attr)
    for r in ranks[1:]:
        if getattr(sigs[r], attr) != ref:
            return ranks[0], r
    return None


def _fmt_pair(
    sigs: dict[int, CollectiveSignature], pair: tuple[int, int], what: str
) -> str:
    a, b = pair
    return (
        f"{what} disagrees across group members: "
        f"rank {a} called {sigs[a].describe()} but "
        f"rank {b} called {sigs[b].describe()}"
    )


def match_signatures(
    sigs: dict[int, CollectiveSignature],
) -> tuple[str, str] | None:
    """Cross-check one matching round of collective signatures.

    ``sigs`` maps *global* rank to the signature it submitted for the
    same per-communicator sequence number.  Returns ``None`` when the
    round is consistent, else ``(rule_id, message)`` where the message
    names the disagreeing ranks, both call sites, and both signatures.

    Per-kind shape contract:

    - ``allreduce``/``reduce_scatter``: identical op, dtype, and shape
      on every rank (elementwise reduction).
    - ``allgather``: identical axis and dtype; shapes must agree on
      every dimension except the concatenation axis.
    - ``bcast``/``gather``: identical root (payload shapes are
      legitimately rank-dependent).
    - ``barrier``: kind agreement only.
    """
    if len(sigs) < 2:
        return None
    pair = _disagree(sigs, "kind")
    if pair is not None:
        return "SPMD202", _fmt_pair(sigs, pair, "collective kind") + (
            " — the per-communicator sequence diverged (a call was "
            "skipped or reordered on one of these ranks)"
        )
    kind = next(iter(sigs.values())).kind
    if kind in ("allreduce", "reduce_scatter"):
        for attr, label in (
            ("op", "reduction op"),
            ("dtype", "dtype"),
            ("shape", "shape"),
        ):
            pair = _disagree(sigs, attr)
            if pair is not None:
                return "SPMD201", _fmt_pair(sigs, pair, label)
    elif kind == "allgather":
        for attr, label in (("axis", "concat axis"), ("dtype", "dtype")):
            pair = _disagree(sigs, attr)
            if pair is not None:
                return "SPMD201", _fmt_pair(sigs, pair, label)
        ranks = sorted(sigs)
        axis = sigs[ranks[0]].axis
        ref = sigs[ranks[0]].shape
        for r in ranks[1:]:
            shape = sigs[r].shape
            trimmed_ref = tuple(
                d for i, d in enumerate(ref) if i != axis
            )
            trimmed = tuple(d for i, d in enumerate(shape) if i != axis)
            if len(shape) != len(ref) or trimmed != trimmed_ref:
                return "SPMD201", _fmt_pair(
                    sigs,
                    (ranks[0], r),
                    "off-axis shape (allgather blocks must agree on "
                    "every dimension except the concat axis)",
                )
    elif kind in ("bcast", "gather"):
        pair = _disagree(sigs, "root")
        if pair is not None:
            return "SPMD201", _fmt_pair(sigs, pair, "root")
    # barrier: kind agreement was already checked.
    return None


class ShmSanitizer:
    """Lifecycle state machine for pooled shared-memory segments.

    States per segment name: ``pooled`` (safe to reuse) and
    ``inflight`` (a peer may still be reading it).  The transport calls
    the hooks at the exact points it mutates its pool; violations raise
    immediately at the offending call site.
    """

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._state: dict[str, str] = {}

    def on_obtain(self, name: str) -> None:
        """A segment is about to be reused for a fresh payload."""
        if self._state.get(name) == "inflight":
            raise ShmLifecycleError(
                f"rank {self.rank}: shm segment {name!r} reused while "
                "still in flight — a peer may be reading it "
                "(use-after-release)",
                rule_id="SPMD211",
            )

    def on_send(self, name: str) -> None:
        """The segment's name was shipped to a peer."""
        self._state[name] = "inflight"

    def on_release(self, name: str) -> None:
        """A free-credit for the segment came back from the receiver."""
        if self._state.get(name) != "inflight":
            raise ShmLifecycleError(
                f"rank {self.rank}: shm segment {name!r} released twice "
                "(duplicated credit message)",
                rule_id="SPMD212",
            )
        self._state[name] = "pooled"

    def on_unlink(self, name: str) -> None:
        """The segment was destroyed (purge/teardown)."""
        self._state.pop(name, None)

    def leaked(self) -> list[str]:
        """Segments still in flight — a leak if the rank is exiting."""
        return sorted(
            n for n, s in self._state.items() if s == "inflight"
        )

    def check_exit(self) -> None:
        """Raise SPMD213 if any segment is still in flight at exit."""
        names = self.leaked()
        if names:
            raise ShmLifecycleError(
                f"rank {self.rank}: {len(names)} shm segment(s) still "
                f"in flight at exit (leak): {', '.join(names)} — a "
                "message was sent but never received",
                rule_id="SPMD213",
            )

    def clear(self) -> None:
        self._state.clear()


#: Board slots per rank: (waiting_on, op_id, stamp).
_SLOTS = 3
_IDLE = -1


class WaitMonitor:
    """Deadlock detection over a shared wait-for board.

    Every rank owns three slots of a flat shared array (any mutable
    integer sequence — ``multiprocessing.Array('q', 3 * size)`` in
    production, a plain list in tests): the peer rank it is blocked on
    (``-1`` when running), an opaque op ID for the report, and a stamp
    incremented on every state change.

    A cycle observed in one snapshot is *not* a deadlock: correct
    send-then-recv patterns (ring allgather, dissemination barrier)
    form transient cycles that resolve within one message latency.  A
    cycle is only confirmed when :meth:`probe` sees the *same* cycle
    with the *same stamps* on two consecutive probes — no participant
    made progress in between.
    """

    def __init__(
        self, board: MutableSequence[int], rank: int, size: int
    ) -> None:
        if len(board) < _SLOTS * size:
            raise ValueError("wait-for board too small for group size")
        self._board = board
        self.rank = rank
        self.size = size
        self._last_cycle: tuple[tuple[int, int], ...] | None = None

    # -- state transitions (called by the owning rank only) -----------------

    def begin_wait(self, peer: int, op_id: int) -> None:
        base = _SLOTS * self.rank
        self._board[base + 1] = op_id
        self._board[base + 2] += 1
        self._board[base] = peer  # publish last: peer slot gates edges

    def end_wait(self) -> None:
        base = _SLOTS * self.rank
        self._board[base] = _IDLE
        self._board[base + 2] += 1

    # -- detection ----------------------------------------------------------

    def snapshot(self) -> list[tuple[int, int, int]]:
        return [
            (
                int(self._board[_SLOTS * r]),
                int(self._board[_SLOTS * r + 1]),
                int(self._board[_SLOTS * r + 2]),
            )
            for r in range(self.size)
        ]

    def _find_cycle(
        self, snap: list[tuple[int, int, int]]
    ) -> list[int] | None:
        """The wait-for cycle through this rank, if one exists now."""
        path: list[int] = []
        seen: set[int] = set()
        r = self.rank
        while 0 <= r < self.size and r not in seen:
            seen.add(r)
            path.append(r)
            r = snap[r][0]
        if r == self.rank and len(path) > 1:
            return path
        return None

    def probe(self) -> None:
        """One detection round; raises :class:`DeadlockError` when a
        cycle through this rank has been stable across two probes."""
        snap = self.snapshot()
        cycle = self._find_cycle(snap)
        if cycle is None:
            self._last_cycle = None
            return
        witness = tuple((r, snap[r][2]) for r in cycle)
        if witness == self._last_cycle:
            edges = " -> ".join(
                f"rank {r} (op {snap[r][1]})" for r in cycle
            )
            self._last_cycle = None
            raise DeadlockError(
                f"wait-for cycle detected: {edges} -> rank {cycle[0]} — "
                "every participant is blocked on the next and none has "
                "made progress between probes",
                rule_id="SPMD203",
            )
        self._last_cycle = witness


def summarize_mismatch(
    group: Iterable[int],
    arrived: dict[int, CollectiveSignature],
    missing: Iterable[int],
    timeout: float,
) -> str:
    """Message for a matching round some members never joined
    (skipped collective / count divergence)."""
    have = ", ".join(
        f"rank {r}: {arrived[r].describe()}" for r in sorted(arrived)
    )
    lost = ", ".join(str(r) for r in sorted(missing))
    members = ", ".join(str(r) for r in group)
    return (
        f"collective matching round over group ({members}) timed out "
        f"after {timeout:.1f}s: rank(s) {lost} never submitted a "
        f"signature (skipped collective or diverged sequence); "
        f"arrived: {have}"
    )
