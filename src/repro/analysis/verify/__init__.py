"""Two-tier SPMD correctness analyzer for the mini-MPI stack.

Tier 1 (:mod:`.spmdlint`) is a static AST lint over SPMD driver code;
tier 2 (:mod:`.runtime`) is the runtime collective-matching verifier,
deadlock detector, and shm-lifecycle sanitizer activated by
``CommConfig(verify=True)``.  Both tiers share the rule registry in
:mod:`.rules`.

This package is imported lazily by :mod:`repro.vmpi.mp_comm` (only
when verify mode is on) and must therefore never import from
:mod:`repro.vmpi` or the rest of :mod:`repro.analysis` at module
scope.
"""

from repro.analysis.verify.rules import RULES, Baseline, Finding, Rule, rule
from repro.analysis.verify.runtime import (
    CollectiveMismatchError,
    CollectiveSignature,
    DeadlockError,
    ShmLifecycleError,
    ShmSanitizer,
    VerifyError,
    WaitMonitor,
    match_signatures,
)
from repro.analysis.verify.spmdlint import lint_paths, lint_source

__all__ = [
    "Baseline",
    "CollectiveMismatchError",
    "CollectiveSignature",
    "DeadlockError",
    "Finding",
    "RULES",
    "Rule",
    "ShmLifecycleError",
    "ShmSanitizer",
    "VerifyError",
    "WaitMonitor",
    "lint_paths",
    "lint_source",
    "match_signatures",
    "rule",
]
