"""Two-tier SPMD correctness analyzer for the mini-MPI stack.

Tier 1 (:mod:`.spmdlint`) is a static AST lint over SPMD driver code;
tier 1b (:mod:`.protocol`) is the whole-program collective-protocol
model checker behind ``repro lint --protocol``; tier 2
(:mod:`.runtime`) is the runtime collective-matching verifier,
deadlock detector, and shm-lifecycle sanitizer activated by
``CommConfig(verify=True)``, joined by the happens-before race
sanitizer (:mod:`.races`) behind ``CommConfig(race_detect=True)``.
All tiers share the rule registry in :mod:`.rules`.

This package is imported lazily by :mod:`repro.vmpi.mp_comm` (only
when verify mode is on) and must therefore never import from
:mod:`repro.vmpi` or the rest of :mod:`repro.analysis` at module
scope.
"""

from repro.analysis.verify.protocol import check_paths, check_source
from repro.analysis.verify.races import (
    RaceDetector,
    RaceError,
    VectorClock,
    get_detector,
    reset_detector,
)
from repro.analysis.verify.rules import RULES, Baseline, Finding, Rule, rule
from repro.analysis.verify.runtime import (
    CollectiveMismatchError,
    CollectiveSignature,
    DeadlockError,
    ShmLifecycleError,
    ShmSanitizer,
    VerifyError,
    WaitMonitor,
    match_signatures,
)
from repro.analysis.verify.spmdlint import lint_paths, lint_source

__all__ = [
    "Baseline",
    "CollectiveMismatchError",
    "CollectiveSignature",
    "DeadlockError",
    "Finding",
    "RULES",
    "RaceDetector",
    "RaceError",
    "Rule",
    "ShmLifecycleError",
    "ShmSanitizer",
    "VectorClock",
    "VerifyError",
    "WaitMonitor",
    "check_paths",
    "check_source",
    "get_detector",
    "lint_paths",
    "lint_source",
    "match_signatures",
    "reset_detector",
    "rule",
]
