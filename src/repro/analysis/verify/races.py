"""``races`` — tier-2 happens-before race sanitizer (SPMD221–223).

PR 7 and PR 8 quietly made the rank runtime multi-threaded: the
overlap machinery runs prefetches on a worker thread, shrink recovery
re-hosts orphaned logical ranks as threads inside the buddy's process,
and the launcher keeps a rendezvous thread.  None of those surfaces
had race checking.  This module adds a vector-clock happens-before
detector in the TSan tradition, switched on with
``CommConfig(race_detect=True)``:

* every participating thread carries a **vector clock** (thread →
  epoch); an access *A* by thread ``t`` at epoch ``e`` happens-before
  the current access iff the current thread's clock has ``clock[t] >=
  e``.  Two accesses to the same location with no such order — and at
  least one a write — are a race, *regardless of how the scheduler
  interleaved them this run*.  Detection is therefore deterministic:
  a seeded race fires on every run, not just unlucky ones.
* happens-before edges come from the places the runtime already
  synchronizes: message channels (``_post`` → ``_note``/``_recv_body``
  carry the sender's clock to the receiver — collective boundaries
  inherit order transitively from their constituent messages), shm
  free credits (consumer → producer, ordering segment reuse), lock
  acquire/release, and fork/join of the overlap worker.
* instrumented locations: shm-pool segment buffers (write on
  ``_send_payload``, read on ``_decode``), transport-endpoint
  occupancy (rule SPMD223 certifies the documented one-in-flight
  overlap contract: at most one thread inside a transport at a time),
  and user annotations via ``ProcessComm.annotate_read`` /
  ``annotate_write`` for hosted-rank shared state the detector cannot
  see into.

Races raise :class:`RaceError` with **both** conflicting stacks — the
current one and the recorded site of the prior access.  Clean runs are
bit- and trace-identical to detection-off runs (the instrumentation
never touches payload bytes or message order) with bounded overhead
(see ``benchmarks/bench_race_overhead.py``).

The detector is process-global (hosted ranks in one process share it;
separate processes need no sharing — a race requires shared memory in
one address space).  Cross-process channel sends leave unconsumed
clock snapshots behind; the per-channel deques are bounded so they
cannot grow without limit, and a missing edge can only ever *miss* a
race across processes (where there is nothing to miss), never invent
one.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from typing import Hashable

from repro.analysis.verify.runtime import VerifyError

__all__ = [
    "RaceDetector",
    "RaceError",
    "VectorClock",
    "get_detector",
    "reset_detector",
]

#: Per-channel bound on unconsumed clock snapshots (cross-process
#: sends never consume theirs).
_CHANNEL_DEPTH = 256

#: Stack frames kept per recorded access site.
_SITE_FRAMES = 3


class RaceError(VerifyError):
    """A happens-before violation (SPMD221–223)."""

    rule_id = "SPMD221"

    def __init__(self, message: str, *, rule_id: str | None = None) -> None:
        if rule_id is not None:
            self.rule_id = rule_id
        super().__init__(message)


class VectorClock:
    """A thread → epoch map with the usual lattice operations."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: dict[int, int] | None = None) -> None:
        self.clocks: dict[int, int] = dict(clocks or ())

    def get(self, tid: int) -> int:
        return self.clocks.get(tid, 0)

    def tick(self, tid: int) -> int:
        nxt = self.clocks.get(tid, 0) + 1
        self.clocks[tid] = nxt
        return nxt

    def merge(self, other: "VectorClock") -> None:
        for tid, epoch in other.clocks.items():
            if epoch > self.clocks.get(tid, 0):
                self.clocks[tid] = epoch

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VectorClock({self.clocks})"


def _site() -> str:
    """A short stack snippet of the calling access, skipping the
    detector's own frames.

    This runs on *every* instrumented access, so it walks raw frames
    with :func:`sys._getframe` instead of
    ``traceback.extract_stack()`` — the latter materializes the whole
    stack and costs enough per call to break the <10% overhead gate
    on message-dense sweeps."""
    frame = sys._getframe(1)
    parts: list[str] = []
    while frame is not None and len(parts) < _SITE_FRAMES:
        code = frame.f_code
        if "verify/races" not in code.co_filename.replace("\\", "/"):
            parts.append(
                f"{code.co_filename.rsplit('/', 1)[-1]}:"
                f"{frame.f_lineno} in {code.co_name}"
            )
        frame = frame.f_back
    return " | ".join(reversed(parts))


class _TracedBody:
    """A message body annotated with the sender's clock snapshot.

    Wrapped at the arrival funnel (``Transport._note``) so the
    happens-before edge is merged into the clock of the thread that
    actually *consumes* the message in ``_recv_body`` — not the thread
    that happened to pump the wire (under overlap, the worker thread
    pumps messages the main thread later consumes; attributing the
    edge to the pump thread would invent order that does not exist).
    """

    __slots__ = ("clock", "body")

    def __init__(self, clock: VectorClock, body: object) -> None:
        self.clock = clock
        self.body = body


class RaceDetector:
    """Process-global vector-clock happens-before detector.

    All public methods are safe to call from any thread; a single
    internal lock orders detector state (the runtime's message rates
    are far below the point where this lock would matter, and the
    <10 % overhead gate in CI keeps it honest).
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._clocks: dict[int, VectorClock] = {}
        self._names: dict[int, str] = {}
        # (src, dst) channel key -> FIFO of sender clock snapshots.
        self._channels: dict[Hashable, deque[VectorClock]] = {}
        # lock identity -> clock released with it.
        self._locks: dict[Hashable, VectorClock] = {}
        # location -> last write (tid, epoch, site).
        self._last_write: dict[Hashable, tuple[int, int, str]] = {}
        # location -> reads since the last write: tid -> (epoch, site).
        self._reads: dict[Hashable, dict[int, tuple[int, str]]] = {}
        # transport id -> (occupying tid, depth, site) for SPMD223.
        self._occupied: dict[int, tuple[int, int, str]] = {}
        self.races: list[RaceError] = []

    # -- thread registry ----------------------------------------------------

    def _me(self) -> int:
        tid = threading.get_ident()
        if tid not in self._clocks:
            self._clocks[tid] = VectorClock()
            self._clocks[tid].tick(tid)
            self._names.setdefault(
                tid, threading.current_thread().name
            )
        return tid

    def register_thread(self, name: str) -> None:
        """Give the calling thread a stable display name."""
        with self._mu:
            tid = self._me()
            self._names[tid] = name

    def _label(self, tid: int) -> str:
        return self._names.get(tid, f"thread-{tid}")

    # -- happens-before edges -----------------------------------------------

    def channel_send(self, key: Hashable) -> VectorClock:
        """Record a message send on ``key``; returns the snapshot that
        travels with the message (also queued FIFO for consumers that
        cannot carry it in-band)."""
        with self._mu:
            tid = self._me()
            clk = self._clocks[tid]
            clk.tick(tid)
            snap = clk.copy()
            self._channels.setdefault(
                key, deque(maxlen=_CHANNEL_DEPTH)
            ).append(snap)
            return snap

    def channel_recv(self, key: Hashable) -> None:
        """Merge the oldest unconsumed send on ``key`` (if any) into
        the calling thread's clock."""
        with self._mu:
            tid = self._me()
            q = self._channels.get(key)
            if q:
                self._clocks[tid].merge(q.popleft())

    def channel_pop(self, key: Hashable) -> VectorClock | None:
        """Take the oldest unconsumed send snapshot on ``key``
        *without* merging it — the arrival funnel attaches it to the
        message body (:class:`_TracedBody`) so the edge lands in the
        clock of the thread that eventually consumes the message, not
        the thread that happened to pump the wire."""
        with self._mu:
            q = self._channels.get(key)
            if q:
                return q.popleft()
            return None

    def merge_clock(self, clock: VectorClock) -> None:
        """Merge an in-band snapshot (a :class:`_TracedBody` clock)
        into the calling thread's clock."""
        with self._mu:
            tid = self._me()
            self._clocks[tid].merge(clock)

    def lock_release(self, key: Hashable) -> None:
        with self._mu:
            tid = self._me()
            clk = self._clocks[tid]
            clk.tick(tid)
            self._locks[key] = clk.copy()

    def lock_acquire(self, key: Hashable) -> None:
        with self._mu:
            tid = self._me()
            held = self._locks.get(key)
            if held is not None:
                self._clocks[tid].merge(held)

    def fork_point(self) -> VectorClock:
        """Snapshot the calling thread's clock for a task about to run
        on another thread (the overlap worker joins it on entry)."""
        with self._mu:
            tid = self._me()
            clk = self._clocks[tid]
            clk.tick(tid)
            return clk.copy()

    def join_point(self, snapshot: VectorClock) -> None:
        """Merge a fork/completion snapshot into the calling thread."""
        self.merge_clock(snapshot)

    # -- access checking ----------------------------------------------------

    def on_access(self, key: Hashable, kind: str) -> None:
        """Record a read (``kind="r"``) or write (``kind="w"``) of the
        location ``key`` and raise :class:`RaceError` when it is
        unordered against a prior conflicting access."""
        with self._mu:
            tid = self._me()
            clk = self._clocks[tid]
            site = _site()
            lw = self._last_write.get(key)
            if kind == "w":
                if (
                    lw is not None
                    and lw[0] != tid
                    and clk.get(lw[0]) < lw[1]
                ):
                    self._raise(
                        "SPMD221",
                        key,
                        f"write-write race on {key!r}: "
                        f"{self._label(tid)} writes at [{site}] with "
                        f"no happens-before order against the write "
                        f"by {self._label(lw[0])} at [{lw[2]}]",
                    )
                for rtid, (repoch, rsite) in self._reads.get(
                    key, {}
                ).items():
                    if rtid != tid and clk.get(rtid) < repoch:
                        self._raise(
                            "SPMD222",
                            key,
                            f"read-write race on {key!r}: "
                            f"{self._label(tid)} writes at [{site}] "
                            f"with no happens-before order against "
                            f"the read by {self._label(rtid)} at "
                            f"[{rsite}]",
                        )
                epoch = clk.tick(tid)
                self._last_write[key] = (tid, epoch, site)
                self._reads.pop(key, None)
            else:
                if (
                    lw is not None
                    and lw[0] != tid
                    and clk.get(lw[0]) < lw[1]
                ):
                    self._raise(
                        "SPMD222",
                        key,
                        f"read-write race on {key!r}: "
                        f"{self._label(tid)} reads at [{site}] with "
                        f"no happens-before order against the write "
                        f"by {self._label(lw[0])} at [{lw[2]}]",
                    )
                epoch = clk.tick(tid)
                self._reads.setdefault(key, {})[tid] = (epoch, site)

    def _raise(self, rule_id: str, key: Hashable, message: str) -> None:
        err = RaceError(f"{rule_id}: {message}", rule_id=rule_id)
        self.races.append(err)
        raise err

    # -- transport occupancy (SPMD223) --------------------------------------

    def enter_transport(self, transport_id: int) -> None:
        """Certify the one-in-flight contract: at most one thread may
        be inside a transport endpoint at a time (reentrancy by the
        same thread is fine — collectives nest sends)."""
        with self._mu:
            tid = self._me()
            cur = self._occupied.get(transport_id)
            if cur is not None and cur[0] != tid:
                self._raise(
                    "SPMD223",
                    transport_id,
                    f"two threads concurrently inside one transport "
                    f"endpoint: {self._label(tid)} enters at "
                    f"[{_site()}] while {self._label(cur[0])} is "
                    f"still inside since [{cur[2]}] — the overlap "
                    "contract allows exactly one user per transport",
                )
            if cur is not None:
                self._occupied[transport_id] = (
                    cur[0],
                    cur[1] + 1,
                    cur[2],
                )
            else:
                self._occupied[transport_id] = (tid, 1, _site())

    def exit_transport(self, transport_id: int) -> None:
        with self._mu:
            cur = self._occupied.get(transport_id)
            if cur is None:
                return
            if cur[1] <= 1:
                self._occupied.pop(transport_id, None)
            else:
                self._occupied[transport_id] = (
                    cur[0],
                    cur[1] - 1,
                    cur[2],
                )


_GLOBAL: RaceDetector | None = None
_GLOBAL_MU = threading.Lock()


def get_detector() -> RaceDetector:
    """The process-global detector (hosted ranks in one process share
    it — races only exist inside one address space)."""
    global _GLOBAL
    with _GLOBAL_MU:
        if _GLOBAL is None:
            _GLOBAL = RaceDetector()
        return _GLOBAL


def reset_detector() -> RaceDetector:
    """Install a fresh global detector (test isolation)."""
    global _GLOBAL
    with _GLOBAL_MU:
        _GLOBAL = RaceDetector()
        return _GLOBAL
