"""``repro lint`` — command-line front end for :mod:`spmdlint`.

Exit codes: 0 clean (or warnings only, without ``--strict``),
1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.verify.rules import RULES, Baseline
from repro.analysis.verify.spmdlint import lint_paths

__all__ = ["lint_main"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static SPMD correctness lint: flags collective calls under "
            "rank-dependent control flow, root/op drift, unmatched p2p "
            "pairs, unseeded RNG, and escaping shm handles.  With "
            "--protocol, also model-checks per-rank collective-schedule "
            "projections of the whole program (SPMD121-126)."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src/repro/distributed"],
        help="files or directories to lint (default: src/repro/distributed)",
    )
    p.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to enable exclusively",
    )
    p.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to suppress",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted finding fingerprints",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as the new baseline and exit 0",
    )
    p.add_argument(
        "--protocol",
        action="store_true",
        help=(
            "additionally run the whole-program protocol model checker "
            "(SPMD121-126): project every SPMD function per rank and "
            "cross-check the collective schedules for equivalence"
        ),
    )
    p.add_argument(
        "--world",
        type=int,
        default=None,
        metavar="P",
        help="world size for --protocol rank projections (default: 4)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (both tiers) and exit",
    )
    return p


def _parse_ids(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    ids = {s.strip() for s in raw.split(",") if s.strip()}
    unknown = ids - set(RULES)
    if unknown:
        raise SystemExit(
            f"repro lint: unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return ids


def lint_main(argv: list[str] | None = None) -> int:
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors
        return int(exc.code or 0)

    if args.list_rules:
        for r in RULES.values():
            print(f"{r.id}  {r.tier:7s} {r.severity:7s} {r.summary}")
        return 0

    try:
        select = _parse_ids(args.select)
        ignore = _parse_ids(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"repro lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    baseline: Baseline | None = None
    if args.baseline and Path(args.baseline).exists():
        baseline = Baseline.load(args.baseline)

    findings = lint_paths(
        args.paths, select=select, ignore=ignore, baseline=baseline
    )
    if args.protocol:
        from repro.analysis.verify.protocol import DEFAULT_WORLD, check_paths

        findings = findings + check_paths(
            args.paths,
            world=args.world or DEFAULT_WORLD,
            select=select,
            ignore=ignore,
            baseline=baseline,
        )
        findings.sort(key=lambda f: (f.path, f.line, f.rule_id))

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(
            f"wrote baseline with {len(findings)} fingerprint(s) to "
            f"{args.write_baseline}"
        )
        return 0

    for f in findings:
        print(f.render())

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        print(
            f"found {errors} error(s), {warnings} warning(s) "
            f"in {len(args.paths)} path(s)"
        )
    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(lint_main())
