"""``protocol`` — whole-program collective-protocol model checker.

Where :mod:`~repro.analysis.verify.spmdlint` judges one call site at a
time, this module extracts a symbolic per-rank **protocol automaton**
from every SPMD function in a source tree — the ordered sequence of
collectives, point-to-point posts, loop trip counts, phase tags, and
rank-predicate branches a rank will execute — and model-checks all
rank projections against each other for schedule equivalence.  A
loosely synchronous program is correct exactly when every rank runs
the *same* collective schedule; a counterexample is reported as two
call sites ("rank A at X awaits ``allreduce``, rank B at Y issues
``reduce_scatter``").

The abstract interpretation is deliberately small but interprocedural:

* a constant/rank environment is threaded through simple assignments,
  so ``me = comm.rank`` and ``right = (me + 1) % comm.size`` are
  *resolved* to integers for each projected rank (default world size
  4) — ring-neighbor p2p patterns project to concrete peer graphs;
* rank-predicate branches (``rank == 0``, ``rank % 2``, ``rank < n``)
  are evaluated per rank; unresolvable rank-tainted predicates
  (``rank == root`` with symbolic ``root``) require both arms to carry
  equivalent collective schedules (the send-one-arm/recv-other-arm
  pairing idiom stays clean);
* loops carry their trip count symbolically — two ranks agree on a
  loop when they agree on its trip count *and* its body protocol;
* calls to other functions in the linted tree are inlined (depth- and
  cycle-guarded); unknown calls contribute no protocol events.

Rules (see :mod:`~repro.analysis.verify.rules`):

``SPMD121``
    A loop whose trip count is rank-dependent encloses a collective —
    ranks run different numbers of collective rounds and the group
    desynchronizes.
``SPMD122``
    Rank projections diverge structurally: a collective reachable for
    one rank has no matching collective at the same protocol position
    of another rank (conditional collective without a matching arm, a
    rank-dependent early return before a collective, diverging kinds
    or roots at a matched position).
``SPMD123``
    The same matched collective position carries different phase tags
    on different ranks — the trace lanes and profiler spans disagree
    across the group even though the schedule itself matches.
``SPMD124``
    A raw transport post/receive uses a tag in the reserved
    control-plane namespace (recovery buddy/agree posts, shm free
    credits, revoke notices, verifier rounds) — user traffic on those
    tags is consumed by the wrong state machine.
``SPMD125``
    A ``comm.send`` whose ``(dest, tag)`` no projected rank ever
    receives (or a ``comm.recv`` no rank ever sends to) — the
    whole-program p2p graph has a dangling edge.
``SPMD126``
    A protocol event (collective or p2p) issued after the rank's
    shutdown point (``comm.verify_shutdown()``): the transport drain
    contract is already closed when the event fires.

Suppression and baselining reuse the spmdlint machinery: the same
``# spmdlint: ignore[SPMD124]`` pragmas and the same line-insensitive
:class:`~repro.analysis.verify.rules.Baseline` fingerprints.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.analysis.verify.rules import Baseline, Finding, filter_findings
from repro.analysis.verify.spmdlint import (
    COLLECTIVES,
    _PRAGMA,
    _attr_chain,
    _collective_kind,
    _is_comm_value,
    _mentions_rank,
    _p2p_kind,
    _rank_taint,
    _root_arg,
)

__all__ = [
    "DEFAULT_WORLD",
    "RESERVED_TAG_KINDS",
    "check_paths",
    "check_source",
]

#: Default projected world size.  Four ranks cover parity predicates
#: (``rank % 2``), root predicates (``rank == 0``), and neighbor
#: arithmetic without blowing up the projection product.
DEFAULT_WORLD = 4

#: Tag kinds owned by the runtime's control planes.  User traffic on a
#: raw transport channel must stay out of this namespace: ``buddy`` /
#: ``agree`` are the elastic-recovery rounds
#: (:mod:`repro.distributed.recovery`), ``shmfree`` the segment-pool
#: credits, ``revoke`` the failure notices, ``ctl``/``vfy``/``vok``
#: the tier-2 verifier rounds, and ``p2p`` the user send/recv wrapper.
RESERVED_TAG_KINDS = frozenset(
    {"buddy", "agree", "shmfree", "revoke", "ctl", "vfy", "vok", "p2p"}
)

#: Raw transport entry points whose tag argument shares the wire's tag
#: namespace (``comm.send``/``recv`` wrap user tags as ``("p2p", tag)``
#: and therefore cannot collide).
_RAW_TAG_CALLS = frozenset({"_post", "_recv_body", "ctrl_send", "ctrl_recv"})

#: Inlining guards.
_MAX_INLINE_DEPTH = 12
_MAX_LOOP_TRIP = 64


# ---------------------------------------------------------------------------
# protocol events (the projection alphabet)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Site:
    """One call site of the protocol, rendered as ``path:line``."""

    path: str
    line: int
    func: str

    def render(self) -> str:
        return f"{self.path}:{self.line} in {self.func}"


@dataclass(frozen=True)
class CollEvent:
    kind: str
    root: object  # resolved int, symbolic str, or None
    phase: str | None
    site: Site


@dataclass(frozen=True)
class P2PEvent:
    kind: str  # "send" | "recv"
    peer: int | None  # resolved global rank, or None when symbolic
    tag: object  # resolved literal, or None when symbolic
    site: Site


@dataclass(frozen=True)
class LoopEvent:
    trip: object  # int when resolved, str symbol otherwise
    body: tuple["Event", ...]
    site: Site


@dataclass(frozen=True)
class EndEvent:
    """A rank-terminating statement (return) or shutdown point."""

    kind: str  # "return" | "shutdown"
    site: Site


Event = Union[CollEvent, P2PEvent, LoopEvent, EndEvent]


# ---------------------------------------------------------------------------
# program table
# ---------------------------------------------------------------------------


@dataclass
class _Func:
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "_Module"
    is_spmd: bool


@dataclass
class _Module:
    path: str
    lines: list[str]
    consts: dict[str, object] = field(default_factory=dict)
    funcs: dict[str, _Func] = field(default_factory=dict)

    def suppressed(self, line: int, rule_id: str) -> bool:
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        m = _PRAGMA.search(text)
        if m is None:
            return False
        ids = m.group(1)
        if ids is None:
            return True
        return rule_id in {s.strip() for s in ids.split(",")}

    def source_at(self, line: int) -> str:
        if 0 < line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _is_spmd_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = fn.args
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if a.arg == "comm":
            return True
        if a.annotation is not None and "Comm" in ast.unparse(a.annotation):
            return True
    return False


def _build_module(path: str, source: str) -> _Module:
    tree = ast.parse(source, filename=path)
    mod = _Module(path=path, lines=source.splitlines())

    def scan(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.funcs.setdefault(
                    stmt.name,
                    _Func(stmt.name, stmt, mod, _is_spmd_function(stmt)),
                )
            elif isinstance(stmt, ast.ClassDef):
                scan(stmt.body)

    scan(tree.body)
    # Module-level string/int constants (``_BUDDY_TAG = "buddy"``) feed
    # the tag evaluation of SPMD124.
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(
                stmt.value, ast.Constant
            ):
                mod.consts[target.id] = stmt.value.value
    return mod


# ---------------------------------------------------------------------------
# expression evaluation under a rank environment
# ---------------------------------------------------------------------------


class _Unknown:
    """Sentinel for "not statically evaluable"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<?>"


UNKNOWN = _Unknown()


def _eval(node: ast.expr, env: dict[str, object]) -> object:
    """Best-effort evaluation of ``node`` under ``env``.

    ``env`` maps names to ints/strings/tuples; ``comm.rank`` and
    ``comm.size`` read the reserved ``@rank`` / ``@size`` entries.
    Returns :data:`UNKNOWN` for anything not statically evaluable.
    """
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id, UNKNOWN)
    if isinstance(node, ast.Attribute):
        if node.attr == "rank" and _is_comm_value(node.value):
            return env.get("@rank", UNKNOWN)
        if node.attr == "size" and _is_comm_value(node.value):
            return env.get("@size", UNKNOWN)
        return env.get(_attr_chain(node), UNKNOWN)
    if isinstance(node, ast.Tuple):
        items = [_eval(e, env) for e in node.elts]
        return tuple(
            None if isinstance(i, _Unknown) else i for i in items
        )
    if isinstance(node, ast.UnaryOp):
        v = _eval(node.operand, env)
        if isinstance(v, _Unknown):
            return UNKNOWN
        try:
            if isinstance(node.op, ast.USub):
                return -v  # type: ignore[operator]
            if isinstance(node.op, ast.Not):
                return not v
        except TypeError:
            return UNKNOWN
        return UNKNOWN
    if isinstance(node, ast.BinOp):
        a = _eval(node.left, env)
        b = _eval(node.right, env)
        if isinstance(a, _Unknown) or isinstance(b, _Unknown):
            return UNKNOWN
        try:
            if isinstance(node.op, ast.Add):
                return a + b  # type: ignore[operator]
            if isinstance(node.op, ast.Sub):
                return a - b  # type: ignore[operator]
            if isinstance(node.op, ast.Mult):
                return a * b  # type: ignore[operator]
            if isinstance(node.op, ast.Mod):
                return a % b  # type: ignore[operator]
            if isinstance(node.op, ast.FloorDiv):
                return a // b  # type: ignore[operator]
        except (TypeError, ZeroDivisionError):
            return UNKNOWN
        return UNKNOWN
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        a = _eval(node.left, env)
        b = _eval(node.comparators[0], env)
        if isinstance(a, _Unknown) or isinstance(b, _Unknown):
            return UNKNOWN
        op = node.ops[0]
        try:
            if isinstance(op, ast.Eq):
                return a == b
            if isinstance(op, ast.NotEq):
                return a != b
            if isinstance(op, ast.Lt):
                return a < b  # type: ignore[operator]
            if isinstance(op, ast.LtE):
                return a <= b  # type: ignore[operator]
            if isinstance(op, ast.Gt):
                return a > b  # type: ignore[operator]
            if isinstance(op, ast.GtE):
                return a >= b  # type: ignore[operator]
        except TypeError:
            return UNKNOWN
        return UNKNOWN
    if isinstance(node, ast.BoolOp):
        vals = [_eval(v, env) for v in node.values]
        if any(isinstance(v, _Unknown) for v in vals):
            return UNKNOWN
        if isinstance(node.op, ast.And):
            return all(bool(v) for v in vals)
        return any(bool(v) for v in vals)
    return UNKNOWN


def _range_trip(call: ast.Call, env: dict[str, object]) -> object:
    """Trip count of a ``range(...)`` iterator, or :data:`UNKNOWN`."""
    args = [_eval(a, env) for a in call.args]
    if any(not isinstance(a, int) or isinstance(a, bool) for a in args):
        return UNKNOWN
    ints = [int(a) for a in args]  # type: ignore[arg-type]
    if len(ints) == 1:
        return max(0, ints[0])
    if len(ints) == 2:
        return max(0, ints[1] - ints[0])
    if len(ints) == 3 and ints[2] != 0:
        lo, hi, step = ints
        if step > 0:
            return max(0, -(-(hi - lo) // step))
        return max(0, -(-(lo - hi) // -step))
    return UNKNOWN


# ---------------------------------------------------------------------------
# projection: one rank's protocol event stream
# ---------------------------------------------------------------------------


class _TooDeep(Exception):
    pass


class _Checker:
    """Shared state of one whole-program check: the function table,
    accumulated findings (deduplicated by fingerprint-equivalent key),
    and the projected world size."""

    def __init__(self, modules: list[_Module], world: int) -> None:
        self.modules = modules
        self.world = world
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, str, int, str]] = set()
        # name -> list of candidate functions across all modules
        self.by_name: dict[str, list[_Func]] = {}
        for mod in modules:
            for fn in mod.funcs.values():
                self.by_name.setdefault(fn.name, []).append(fn)

    def add(
        self, rule_id: str, mod: _Module, line: int, message: str
    ) -> None:
        if mod.suppressed(line, rule_id):
            return
        key = (rule_id, mod.path, line, message[:80])
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(rule_id, mod.path, line, message, mod.source_at(line))
        )

    def resolve_call(self, call: ast.Call) -> _Func | None:
        """The linted function a call targets, if unambiguous."""
        fn = call.func
        name = ""
        if isinstance(fn, ast.Name):
            name = fn.id
        elif isinstance(fn, ast.Attribute):
            name = fn.attr
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


class _Projector:
    """Project one rank's protocol events out of a function body."""

    def __init__(
        self,
        checker: _Checker,
        func: _Func,
        rank: int,
        env: dict[str, object],
        depth: int = 0,
        stack: frozenset[str] = frozenset(),
    ) -> None:
        self.checker = checker
        self.func = func
        self.mod = func.module
        self.rank = rank
        self.env = env
        self.depth = depth
        self.stack = stack
        self.taint = _rank_taint(func.node)
        self.phase: str | None = None
        self.events: list[Event] = []
        self._terminated = False
        # Set when a rank-dependent branch may have returned early:
        # (site of the return, predicate text).  A collective emitted
        # while this is set strands the returned ranks -> SPMD122.
        self.maybe_returned: tuple[Site, str] | None = None

    # -- helpers ------------------------------------------------------------

    def site(self, node: ast.AST) -> Site:
        return Site(
            self.mod.path, getattr(node, "lineno", 1), self.func.name
        )

    def _emit(self, ev: Event) -> None:
        if isinstance(ev, CollEvent) and self.maybe_returned is not None:
            ret_site, test = self.maybe_returned
            self.maybe_returned = None
            self.checker.add(
                "SPMD122",
                self.mod,
                ev.site.line,
                f"comm.{ev.kind}() at {ev.site.render()} is "
                f"unreachable for ranks that took the rank-dependent "
                f"early return at {ret_site.render()} (under "
                f"{test!r}) — those ranks never join the collective "
                "and the group hangs",
            )
        self.events.append(ev)

    def _as_int(self, value: object) -> int | None:
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return value

    # -- statement walk -----------------------------------------------------

    def run(self) -> list[Event]:
        self._walk_body(self.func.node.body)
        return self.events

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if self._terminated:
                return
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._do_assign(stmt)
        elif isinstance(stmt, ast.Expr):
            self._do_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._do_if(stmt)
        elif isinstance(stmt, ast.For):
            self._do_for(stmt)
        elif isinstance(stmt, ast.While):
            self._do_while(stmt)
        elif isinstance(stmt, ast.With):
            self._do_with(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._do_expr(stmt.value)
            self._emit(EndEvent("return", self.site(stmt)))
            self._terminated = True
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            # Loop bodies are projected once (not unrolled), so a
            # break/continue marks the body as control-divergent only
            # when it is itself under a rank-dependent branch — which
            # the arm comparison of _do_if already surfaces.
            pass
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._scan_nested_for_findings(handler.body)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs project when called
        else:
            # Generic statements may still hide calls (e.g. assert).
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    self._do_call(sub, emit=True)

    # -- assignments --------------------------------------------------------

    def _do_assign(
        self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign
    ) -> None:
        value = stmt.value
        if value is not None:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Call):
                    self._do_call(sub, emit=True)
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]
        if isinstance(stmt, ast.AugAssign) or value is None:
            for t in targets:
                if isinstance(t, ast.Name):
                    self.env.pop(t.id, None)
            return
        resolved = _eval(value, self.env)
        for t in targets:
            if isinstance(t, ast.Name):
                if isinstance(resolved, _Unknown):
                    self.env.pop(t.id, None)
                else:
                    self.env[t.id] = resolved
            elif (
                isinstance(t, ast.Attribute)
                and t.attr == "phase"
                and _is_comm_value(t.value)
            ):
                self.phase = (
                    resolved if isinstance(resolved, str) else None
                )

    # -- calls --------------------------------------------------------------

    def _do_expr(self, value: ast.expr) -> None:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call):
                self._do_call(sub, emit=True)

    def _do_call(self, call: ast.Call, *, emit: bool) -> None:
        kind = _collective_kind(call)
        if kind is not None:
            root_node = _root_arg(kind, call)
            root: object = None
            if root_node is not None:
                resolved = _eval(root_node, self.env)
                root = (
                    ast.unparse(root_node)
                    if isinstance(resolved, _Unknown)
                    else resolved
                )
            self._emit(CollEvent(kind, root, self.phase, self.site(call)))
            return
        p2p = _p2p_kind(call)
        if p2p is not None:
            self._emit(self._p2p_event(p2p, call))
            return
        fn = call.func
        if isinstance(fn, ast.Attribute):
            if fn.attr == "verify_shutdown" and _is_comm_value(fn.value):
                self._emit(EndEvent("shutdown", self.site(call)))
                return
            if fn.attr in _RAW_TAG_CALLS:
                self._check_raw_tag(fn.attr, call)
                return
        callee = self.checker.resolve_call(call)
        if (
            callee is not None
            and callee.is_spmd
            and callee.name != self.func.name
            and callee.name not in self.stack
            and self.depth < _MAX_INLINE_DEPTH
        ):
            sub = _Projector(
                self.checker,
                callee,
                self.rank,
                {"@rank": self.rank, "@size": self.checker.world},
                self.depth + 1,
                self.stack | {self.func.name},
            )
            sub.phase = self.phase
            self.events.extend(sub.run())

    def _p2p_event(self, kind: str, call: ast.Call) -> P2PEvent:
        # comm.send(dest, payload, tag=...) / comm.recv(src, tag=...)
        peer_node = call.args[0] if call.args else None
        tag_node: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "tag":
                tag_node = kw.value
        if tag_node is None:
            idx = 2 if kind == "send" else 1
            if len(call.args) > idx:
                tag_node = call.args[idx]
        peer: int | None = None
        if peer_node is not None:
            peer = self._as_int(_eval(peer_node, self.env))
        tag: object = 0
        if tag_node is not None:
            resolved = _eval(tag_node, self.env)
            tag = None if isinstance(resolved, _Unknown) else resolved
        return P2PEvent(kind, peer, tag, self.site(call))

    def _check_raw_tag(self, attr: str, call: ast.Call) -> None:
        """SPMD124: raw transport traffic in a reserved tag namespace."""
        tag_node: ast.expr | None = None
        if attr in ("_post", "ctrl_send") and len(call.args) >= 2:
            tag_node = call.args[1]
        elif attr in ("_recv_body", "ctrl_recv") and len(call.args) >= 2:
            tag_node = call.args[1]
        for kw in call.keywords:
            if kw.arg == "tag":
                tag_node = kw.value
        if tag_node is None:
            return
        env = dict(self.mod.consts)
        env.update(self.env)
        resolved = _eval(tag_node, env)
        kinds: list[str] = []
        if isinstance(resolved, str):
            kinds = [resolved]
        elif isinstance(resolved, tuple):
            kinds = [k for k in resolved if isinstance(k, str)]
        hit = next((k for k in kinds if k in RESERVED_TAG_KINDS), None)
        if hit is None:
            return
        self.checker.add(
            "SPMD124",
            self.mod,
            call.lineno,
            f"raw transport {attr}() at "
            f"{self.site(call).render()} uses tag kind {hit!r}, which "
            "is reserved for the runtime control plane (recovery "
            "buddy/agree posts, shm free credits, revoke notices, "
            "verifier rounds) — user traffic on this tag is consumed "
            "by the wrong state machine; pick a tag outside "
            f"{sorted(RESERVED_TAG_KINDS)}",
        )

    # -- control flow -------------------------------------------------------

    def _scan_nested_for_findings(self, body: Sequence[ast.stmt]) -> None:
        """Project a dead/alternate arm purely for its own findings
        (raw-tag scans, nested rank branches), discarding its events."""
        sub = _Projector(
            self.checker,
            self.func,
            self.rank,
            dict(self.env),
            self.depth,
            self.stack,
        )
        sub.phase = self.phase
        sub.taint = self.taint
        sub._walk_body(list(body))

    def _project_arm(self, body: Sequence[ast.stmt]) -> "_Projector":
        sub = _Projector(
            self.checker,
            self.func,
            self.rank,
            dict(self.env),
            self.depth,
            self.stack,
        )
        sub.phase = self.phase
        sub.taint = self.taint
        sub.maybe_returned = self.maybe_returned
        sub._walk_body(list(body))
        return sub

    def _do_if(self, stmt: ast.If) -> None:
        verdict = _eval(stmt.test, self.env)
        if isinstance(verdict, bool):
            taken = stmt.body if verdict else stmt.orelse
            dead = stmt.orelse if verdict else stmt.body
            self._scan_nested_for_findings(dead)
            self._walk_body(list(taken))
            return
        rank_dep = _mentions_rank(stmt.test, self.taint)
        body = self._project_arm(stmt.body)
        orelse = self._project_arm(stmt.orelse)
        if rank_dep:
            # Unresolvable rank predicate: membership of each arm is
            # unknown, so both arms must carry equivalent collective
            # protocols (p2p may differ — the pairing idiom).  A bare
            # early return is fine *so far*: it only becomes a finding
            # if a collective follows it (tracked via maybe_returned).
            mism = _first_mismatch(
                _strip_trailing_end(_comparable(body.events)),
                _strip_trailing_end(_comparable(orelse.events)),
            )
            if mism is not None:
                self._report_arm_mismatch(stmt, mism)
            merged = body.events if body.events else orelse.events
            self.events.extend(merged)
            # Keep the p2p posts of the arm we did not take visible to
            # the whole-program send/recv matcher.
            other = orelse.events if body.events else []
            for ev in other:
                if isinstance(ev, P2PEvent):
                    self._emit(
                        P2PEvent(ev.kind, None, ev.tag, ev.site)
                    )
            if body._terminated and orelse._terminated:
                self._terminated = True
            elif body._terminated or orelse._terminated:
                arm = body if body._terminated else orelse
                ret = next(
                    (
                        e
                        for e in reversed(arm.events)
                        if isinstance(e, EndEvent)
                    ),
                    None,
                )
                site = ret.site if ret is not None else self.site(stmt)
                self.maybe_returned = (site, ast.unparse(stmt.test))
        else:
            # Replicated data decision: every rank takes the same arm.
            self.events.extend(body.events)
            for ev in orelse.events:
                if isinstance(ev, P2PEvent):
                    self._emit(ev)
            if body._terminated and orelse._terminated:
                self._terminated = True
        for arm in (body, orelse):
            if arm.maybe_returned is not None:
                self.maybe_returned = arm.maybe_returned
        if body.phase == orelse.phase:
            self.phase = body.phase

    def _report_arm_mismatch(
        self, stmt: ast.If, mism: "_Mismatch"
    ) -> None:
        a, b = mism.a, mism.b
        if (
            isinstance(a, CollEvent)
            and isinstance(b, CollEvent)
            and a.kind == b.kind
            and a.root == b.root
        ):
            self.checker.add(
                "SPMD123",
                self.mod,
                a.site.line,
                f"phase tag diverges across the arms of the "
                f"rank-dependent conditional at line {stmt.lineno}: "
                f"comm.{a.kind}() at {a.site.render()} runs under "
                f"phase {a.phase!r} but its matching arm at "
                f"{b.site.render()} runs under phase {b.phase!r}",
            )
            return
        a_txt = _describe(a)
        b_txt = _describe(b)
        line = a.site.line if a is not None else stmt.lineno
        self.checker.add(
            "SPMD122",
            self.mod,
            line,
            "rank-dependent conditional at line "
            f"{stmt.lineno} ({ast.unparse(stmt.test)!r}) has no "
            f"matching collective arm: ranks taking one arm run "
            f"{a_txt} while ranks taking the other run {b_txt} — "
            "part of the group never joins the collective",
        )

    def _do_for(self, stmt: ast.For) -> None:
        if isinstance(stmt.target, ast.Name):
            self.env.pop(stmt.target.id, None)
        trip: object = UNKNOWN
        if (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            trip = _range_trip(stmt.iter, self.env)
        self._do_loop(stmt, stmt.iter, trip)

    def _do_while(self, stmt: ast.While) -> None:
        self._do_loop(stmt, stmt.test, UNKNOWN)

    def _do_loop(
        self, stmt: ast.For | ast.While, ctrl: ast.expr, trip: object
    ) -> None:
        sub = self._project_arm(stmt.body)
        body_ev, body_phase = sub.events, sub.phase
        if isinstance(stmt, ast.For):
            self._scan_nested_for_findings(stmt.orelse)
        has_coll = _contains_coll(body_ev)
        rank_dep = _mentions_rank(ctrl, self.taint)
        if isinstance(trip, _Unknown):
            if rank_dep and has_coll:
                coll = _first_coll(body_ev)
                assert coll is not None
                self.checker.add(
                    "SPMD121",
                    self.mod,
                    stmt.lineno,
                    f"loop at line {stmt.lineno} "
                    f"({ast.unparse(ctrl)!r}) has a rank-dependent "
                    f"trip count and encloses comm.{coll.kind}() at "
                    f"{coll.site.render()} — ranks run different "
                    "numbers of collective rounds and the group "
                    "desynchronizes",
                )
            symbol = f"{self.mod.path}:{stmt.lineno}"
            self._emit(LoopEvent(symbol, tuple(body_ev), self.site(stmt)))
        else:
            n = int(trip)  # type: ignore[arg-type]
            self._emit(
                LoopEvent(min(n, _MAX_LOOP_TRIP), tuple(body_ev),
                          self.site(stmt))
            )
        if body_phase is not None:
            self.phase = body_phase

    def _do_with(self, stmt: ast.With) -> None:
        pushed = False
        prev = self.phase
        for item in stmt.items:
            ctx = item.context_expr
            if isinstance(ctx, ast.Call):
                name = ""
                if isinstance(ctx.func, ast.Name):
                    name = ctx.func.id
                elif isinstance(ctx.func, ast.Attribute):
                    name = ctx.func.attr
                if name.endswith("phase") and len(ctx.args) >= 2:
                    tag = _eval(ctx.args[1], self.env)
                    if isinstance(tag, str):
                        self.phase = tag
                        pushed = True
                else:
                    self._do_call(ctx, emit=True)
        self._walk_body(stmt.body)
        if pushed:
            self.phase = prev


# ---------------------------------------------------------------------------
# cross-rank comparison
# ---------------------------------------------------------------------------


@dataclass
class _Mismatch:
    a: Event | None  # rank A's event at the diverging position
    b: Event | None  # rank B's event at the diverging position
    in_loop: LoopEvent | None = None


def _comparable(events: Iterable[Event]) -> list[Event]:
    """The cross-rank comparison stream: collectives, collective
    loops, and terminal events.  P2P events legitimately differ per
    rank (ring and pairing patterns) and are matched globally instead;
    a loop whose body holds only p2p traffic is likewise dropped."""
    out: list[Event] = []
    for e in events:
        if isinstance(e, P2PEvent):
            continue
        if isinstance(e, LoopEvent) and not _contains_coll(e.body):
            continue
        out.append(e)
    return out


def _strip_trailing_end(events: list[Event]) -> list[Event]:
    """Drop a trailing return from an arm's comparison stream: a bare
    rank-dependent early return is judged by what *follows* the branch
    (see ``maybe_returned``), not by the arm comparison itself."""
    out = list(events)
    while out and isinstance(out[-1], EndEvent) and out[-1].kind == "return":
        out.pop()
    return out


def _contains_coll(events: Iterable[Event]) -> bool:
    return _first_coll(events) is not None


def _first_coll(events: Iterable[Event]) -> CollEvent | None:
    for e in events:
        if isinstance(e, CollEvent):
            return e
        if isinstance(e, LoopEvent):
            sub = _first_coll(e.body)
            if sub is not None:
                return sub
    return None


def _describe(ev: Event | None) -> str:
    if ev is None:
        return "no collective at all"
    if isinstance(ev, CollEvent):
        root = f"(root={ev.root})" if ev.root is not None else ""
        return f"comm.{ev.kind}(){root} at {ev.site.render()}"
    if isinstance(ev, LoopEvent):
        return f"a collective loop at {ev.site.render()}"
    if isinstance(ev, EndEvent):
        verb = "returns" if ev.kind == "return" else "shuts down"
        return f"{verb} at {ev.site.render()}"
    return f"comm.{ev.kind}() at {ev.site.render()}"  # pragma: no cover


def _first_mismatch(
    a: list[Event], b: list[Event]
) -> _Mismatch | None:
    """First position where two comparison streams diverge."""
    for ea, eb in zip(a, b):
        if isinstance(ea, CollEvent) and isinstance(eb, CollEvent):
            if (
                ea.kind != eb.kind
                or ea.root != eb.root
                or ea.phase != eb.phase
            ):
                return _Mismatch(ea, eb)
            continue
        if isinstance(ea, LoopEvent) and isinstance(eb, LoopEvent):
            sub = _first_mismatch(
                _comparable(ea.body), _comparable(eb.body)
            )
            if sub is not None:
                sub.in_loop = sub.in_loop or ea
                return sub
            if ea.trip != eb.trip and (
                _contains_coll(ea.body) or _contains_coll(eb.body)
            ):
                return _Mismatch(ea, eb, in_loop=ea)
            continue
        if isinstance(ea, EndEvent) and isinstance(eb, EndEvent):
            continue
        return _Mismatch(ea, eb)
    if len(a) != len(b):
        longer, shorter = (a, b) if len(a) > len(b) else (b, a)
        extra = longer[len(shorter)]
        last = shorter[-1] if shorter else None
        if len(a) > len(b):
            return _Mismatch(extra, last)
        return _Mismatch(last, extra)
    return None


def _check_divergence(
    checker: _Checker,
    func: _Func,
    projections: dict[int, list[Event]],
) -> None:
    """Compare every rank's projection against rank 0's."""
    base = _comparable(projections[0])
    for r in range(1, checker.world):
        other = _comparable(projections[r])
        mism = _first_mismatch(base, other)
        if mism is None:
            continue
        a, b = mism.a, mism.b
        if (
            isinstance(a, CollEvent)
            and isinstance(b, CollEvent)
            and a.kind == b.kind
            and a.root == b.root
            and a.phase != b.phase
        ):
            checker.add(
                "SPMD123",
                func.module,
                a.site.line,
                f"phase tag diverges at a matched protocol position: "
                f"rank 0 tags comm.{a.kind}() at {a.site.render()} "
                f"with phase {a.phase!r} but rank {r} tags the same "
                f"collective at {b.site.render()} with phase "
                f"{b.phase!r} — the trace lanes and profiler spans "
                "disagree across the group",
            )
            return
        if mism.in_loop is not None and not (
            isinstance(a, CollEvent) and isinstance(b, CollEvent)
            and a.kind != b.kind
        ):
            loop = mism.in_loop
            coll = _first_coll(loop.body) or (
                a if isinstance(a, CollEvent) else None
            )
            coll_txt = (
                f" enclosing comm.{coll.kind}() at {coll.site.render()}"
                if coll is not None
                else ""
            )
            trips = ""
            if isinstance(a, LoopEvent) and isinstance(b, LoopEvent):
                trips = (
                    f" (rank 0 runs {a.trip} iterations, rank {r} "
                    f"runs {b.trip})"
                )
            checker.add(
                "SPMD121",
                func.module,
                loop.site.line,
                f"loop at {loop.site.render()}{coll_txt} has a "
                f"rank-dependent trip count{trips} — ranks run "
                "different numbers of collective rounds and the "
                "group desynchronizes",
            )
            return
        line = (
            a.site.line
            if a is not None
            else (b.site.line if b is not None else 1)
        )
        checker.add(
            "SPMD122",
            func.module,
            line,
            f"rank projections of {func.name}() diverge: rank 0 "
            f"{_awaits(a)} while rank {r} {_awaits(b)} — the group "
            "disagrees on the matched collective at this position",
        )
        return


def _awaits(ev: Event | None) -> str:
    if ev is None:
        return "issues no further collective"
    if isinstance(ev, CollEvent):
        root = f" root={ev.root}" if ev.root is not None else ""
        return (
            f"awaits comm.{ev.kind}(){root} at {ev.site.render()}"
        )
    if isinstance(ev, EndEvent):
        verb = "returns" if ev.kind == "return" else "shuts down"
        return f"{verb} at {ev.site.render()}"
    if isinstance(ev, LoopEvent):
        return f"enters the collective loop at {ev.site.render()}"
    return f"issues comm.{ev.kind}() at {ev.site.render()}"


# ---------------------------------------------------------------------------
# whole-program p2p matching (SPMD125) and shutdown order (SPMD126)
# ---------------------------------------------------------------------------


def _flatten(events: Iterable[Event]) -> list[Event]:
    out: list[Event] = []
    for e in events:
        if isinstance(e, LoopEvent):
            out.append(e)
            out.extend(_flatten(e.body))
        else:
            out.append(e)
    return out


def _tags_compatible(a: object, b: object) -> bool:
    return a is None or b is None or a == b


def _check_p2p(
    checker: _Checker,
    func: _Func,
    projections: dict[int, list[Event]],
) -> None:
    sends: list[tuple[int, P2PEvent]] = []
    recvs: list[tuple[int, P2PEvent]] = []
    for r, events in projections.items():
        for ev in _flatten(events):
            if isinstance(ev, P2PEvent):
                (sends if ev.kind == "send" else recvs).append((r, ev))
    if not sends and not recvs:
        return
    reported: set[int] = set()
    for r, s in sends:
        ok = any(
            (s.peer is None or s.peer == rr)
            and (rv.peer is None or rv.peer == r)
            and _tags_compatible(s.tag, rv.tag)
            for rr, rv in recvs
        )
        if not ok and s.site.line not in reported:
            reported.add(s.site.line)
            near = recvs[0][1].site.render() if recvs else "anywhere"
            tags = sorted({repr(rv.tag) for _, rv in recvs}) or ["none"]
            checker.add(
                "SPMD125",
                func.module,
                s.site.line,
                f"comm.send() at {s.site.render()} (rank {r} -> "
                f"{'?' if s.peer is None else s.peer}, tag {s.tag!r}) "
                f"has no matching comm.recv() in any rank projection "
                f"(nearest recv: {near}, recv tags: "
                f"{', '.join(tags)}) — the message is never consumed",
            )
    for r, rv in recvs:
        ok = any(
            (s.peer is None or s.peer == r)
            and (rv.peer is None or rv.peer == rr)
            and _tags_compatible(s.tag, rv.tag)
            for rr, s in sends
        )
        if not ok and rv.site.line not in reported:
            reported.add(rv.site.line)
            near = sends[0][1].site.render() if sends else "anywhere"
            checker.add(
                "SPMD125",
                func.module,
                rv.site.line,
                f"comm.recv() at {rv.site.render()} (rank {r} <- "
                f"{'?' if rv.peer is None else rv.peer}, tag "
                f"{rv.tag!r}) has no matching comm.send() in any rank "
                f"projection (nearest send: {near}) — the wait can "
                "only end in a timeout",
            )


def _check_shutdown(
    checker: _Checker,
    func: _Func,
    projections: dict[int, list[Event]],
) -> None:
    for _r, events in projections.items():
        flat = _flatten(events)
        shut: EndEvent | None = None
        for ev in flat:
            if isinstance(ev, EndEvent) and ev.kind == "shutdown":
                shut = ev
            elif shut is not None and isinstance(
                ev, (CollEvent, P2PEvent)
            ):
                what = (
                    f"comm.{ev.kind}()"
                    if isinstance(ev, (CollEvent, P2PEvent))
                    else "a protocol event"
                )
                checker.add(
                    "SPMD126",
                    func.module,
                    ev.site.line,
                    f"{what} at {ev.site.render()} is issued after "
                    f"the rank's shutdown point at "
                    f"{shut.site.render()} — verify_shutdown() "
                    "closes the transport drain contract, so later "
                    "traffic is unaccounted (leak reports and "
                    "counters are already final)",
                )
                return


# ---------------------------------------------------------------------------
# driving
# ---------------------------------------------------------------------------


def _scan_raw_tags(checker: _Checker, mod: _Module) -> None:
    """SPMD124 sweep over *every* function (not just SPMD entry
    points): raw transport posts live in helper classes too — the
    recovery manager's buddy/agree rounds are the sanctioned escapes
    a committed baseline records."""
    for func in mod.funcs.values():
        proj = _Projector(checker, func, 0, {"@rank": 0, "@size": 1})
        # Light const-propagation so ``tag = (_BUDDY_TAG, seq)`` feeds
        # the reserved-namespace test of the later ``_post(.., tag)``.
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    env = dict(mod.consts)
                    env.update(proj.env)
                    val = _eval(node.value, env)
                    if not isinstance(val, _Unknown):
                        proj.env[t.id] = val
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _RAW_TAG_CALLS:
                    proj._check_raw_tag(node.func.attr, node)


def _check_program(modules: list[_Module], world: int) -> list[Finding]:
    checker = _Checker(modules, world)
    for mod in modules:
        _scan_raw_tags(checker, mod)
        for func in mod.funcs.values():
            if not func.is_spmd:
                continue
            projections: dict[int, list[Event]] = {}
            for r in range(world):
                proj = _Projector(
                    checker,
                    func,
                    r,
                    {"@rank": r, "@size": world},
                )
                projections[r] = proj.run()
            _check_divergence(checker, func, projections)
            _check_p2p(checker, func, projections)
            _check_shutdown(checker, func, projections)
    checker.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return checker.findings


def check_source(
    source: str, path: str = "<string>", *, world: int = DEFAULT_WORLD
) -> list[Finding]:
    """Model-check one source string; returns findings in line order."""
    return _check_program([_build_module(path, source)], world)


def check_paths(
    paths: Sequence[str | Path],
    *,
    world: int = DEFAULT_WORLD,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Model-check files and directories (``.py`` files, recursively).

    All files are loaded into one program table, so calls across
    modules inline whenever the callee's name is unambiguous.
    """
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    modules = [_build_module(str(f), f.read_text()) for f in files]
    findings = _check_program(modules, world)
    return filter_findings(
        findings, select=select, ignore=ignore, baseline=baseline
    )
