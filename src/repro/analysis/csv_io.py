"""CSV persistence for experiment results.

The paper's artifact emits per-run CSV files that post-processing
scripts (``CollectScaleScript.py`` / ``CollectRankScript.py``) parse
into the figures; these helpers play the same role for our harness.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.experiments import DatasetExperiment
from repro.analysis.metrics import relative_size
from repro.analysis.scaling import ScalingPoint

__all__ = [
    "write_scaling_csv",
    "read_scaling_csv",
    "write_dataset_csv",
]


def write_scaling_csv(
    points: Sequence[ScalingPoint], path: str | Path
) -> None:
    """Persist strong-scaling points (one row per algorithm x P)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["algorithm", "p", "grid", "seconds"])
        for pt in points:
            writer.writerow(
                [
                    pt.algorithm,
                    pt.p,
                    "x".join(map(str, pt.grid)),
                    repr(pt.seconds),
                ]
            )


def read_scaling_csv(path: str | Path) -> list[ScalingPoint]:
    """Load strong-scaling points written by :func:`write_scaling_csv`.

    Breakdowns are not persisted; loaded points carry empty ones.
    """
    out: list[ScalingPoint] = []
    with Path(path).open(newline="") as fh:
        for row in csv.DictReader(fh):
            out.append(
                ScalingPoint(
                    algorithm=row["algorithm"],
                    p=int(row["p"]),
                    grid=tuple(int(t) for t in row["grid"].split("x")),
                    seconds=float(row["seconds"]),
                    breakdown={},
                )
            )
    return out


def write_dataset_csv(
    exp: DatasetExperiment, path: str | Path
) -> None:
    """Persist a dataset experiment's progression (Figs. 4/6/8 data)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "dataset", "eps", "algorithm", "start", "iteration",
                "ranks", "cum_seconds", "rel_error", "rel_size",
            ]
        )
        for eps, base in sorted(exp.baselines.items(), reverse=True):
            writer.writerow(
                [
                    exp.name, eps, "sthosvd", "", "",
                    " ".join(map(str, base.ranks)),
                    repr(base.seconds), repr(base.error),
                    repr(base.relative_size),
                ]
            )
            for kind in ("perfect", "over", "under"):
                run = exp.adaptive_for(eps, kind)
                cum = 0.0
                for rec, secs in zip(
                    run.history, run.stats.iteration_seconds
                ):
                    cum += secs
                    ranks = rec.truncated_ranks or rec.ranks_used
                    err = (
                        rec.truncated_error
                        if rec.truncated_error is not None
                        else rec.error
                    )
                    writer.writerow(
                        [
                            exp.name, eps, "ra-hosi-dt", kind,
                            rec.iteration,
                            " ".join(map(str, ranks)),
                            repr(cum), repr(err),
                            repr(relative_size(exp.shape, ranks)),
                        ]
                    )
