"""Plain-text table/series formatting for the benchmark harness.

The paper's figures are PGFPlots; here every table and figure is
re-emitted as aligned ASCII so the benchmark output is directly
comparable against the paper's reported rows and series.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series", "format_breakdown"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_cell(v, floatfmt) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render one-line-per-x table of several named series (a figure's
    data, one column per curve)."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(vals[i] for vals in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, floatfmt=floatfmt, title=title)


def format_breakdown(
    labels: Sequence[str],
    breakdowns: Sequence[dict[str, float]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render stacked-bar data: one row per configuration, one column
    per category."""
    cats: list[str] = []
    for b in breakdowns:
        for k in b:
            if k not in cats:
                cats.append(k)
    headers = ["config", *cats, "total"]
    rows = []
    for label, b in zip(labels, breakdowns):
        rows.append(
            [label, *(b.get(c, 0.0) for c in cats), sum(b.values())]
        )
    return format_table(headers, rows, floatfmt=floatfmt, title=title)
