"""Closed-form leading-order cost formulas (paper Tables 1 and 2).

All formulas assume the paper's simplifying model: a cubic tensor
``n^d``, cubic core ``r^d``, and a ``P_1 x ... x P_d`` grid with
``P = prod(P_i)``.  The Table 1/2 benchmarks compare these against the
ledger's *measured* counts, asserting that measured/analytic ratios are
constant across parameter sweeps (shape match; the paper itself keeps
only leading-order terms, so exact equality is not expected).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = [
    "sthosvd_flops",
    "hooi_iteration_flops",
    "hooi_ttm_count",
    "ra_hosi_dt_flops",
    "sthosvd_words",
    "hooi_iteration_words",
]


def _check(n: int, d: int, r: int, p: int) -> None:
    if min(n, d, r, p) < 1:
        raise ValueError("n, d, r, p must be positive")
    if r > n:
        raise ValueError("r cannot exceed n")


# ---------------------------------------------------------------------------
# Table 1 — flops
# ---------------------------------------------------------------------------


def sthosvd_flops(n: int, d: int, r: int, p: int) -> dict[str, float]:
    """STHOSVD leading-order flops: Gram ``n^{d+1}/P``, EVD ``O(d n^3)``,
    TTM ``2 r n^d / P``."""
    _check(n, d, r, p)
    return {
        "gram": float(n) ** (d + 1) / p,
        "evd": d * float(n) ** 3,
        "ttm": 2.0 * r * float(n) ** d / p,
    }


def hooi_iteration_flops(
    n: int,
    d: int,
    r: int,
    p: int,
    *,
    dimension_tree: bool = True,
    subspace: bool = True,
) -> dict[str, float]:
    """Per-iteration HOOI flops for the four variants (Table 1)."""
    _check(n, d, r, p)
    out: dict[str, float] = {}
    if dimension_tree:
        out["ttm"] = 4.0 * r * float(n) ** d / p
    else:
        out["ttm"] = 2.0 * d * r * float(n) ** d / p
    if subspace:
        out["llsv"] = 4.0 * d * n * float(r) ** d / p
        out["llsv_seq"] = d * float(n) * r**2  # QRCP, sequential
    else:
        out["llsv"] = d * float(n) ** 2 * float(r) ** (d - 1) / p
        out["llsv_seq"] = d * float(n) ** 3  # EVD, sequential
    out["core_analysis"] = d * float(r) ** d
    return out


def hooi_ttm_count(
    d: int,
    *,
    dimension_tree: bool = True,
    rule: str = "half",
    include_core: bool = True,
) -> int:
    """Exact per-iteration multi-TTM count behind Table 1's ttm rows.

    The flop formulas above keep only the two dominant root-adjacent
    TTMs (``4 r n^d / P``); this is the exact count those formulas
    summarize — the number the executed mp layer's per-phase
    :class:`~repro.vmpi.trace.CollectiveRecord` traces are certified
    against.  Direct: ``d (d-1)`` plus the core TTM.  Memoized: the
    Alg. 4 recurrence ``T(1) = 0, T(k) = k + T(ceil/floor halves)``
    plus the core TTM (``"single"`` gives the caterpillar ablation's
    ``d (d+1)/2 - 1``).
    """
    from repro.core.dimension_tree import (
        direct_ttm_count,
        memoized_ttm_count,
    )

    if dimension_tree:
        return memoized_ttm_count(d, rule, include_core=include_core)
    return direct_ttm_count(d, include_core=include_core)


def ra_hosi_dt_flops(
    n: int, d: int, r: int, p: int, iters: int
) -> dict[str, float]:
    """RA-HOSI-DT total flops over ``iters`` iterations (Table 1 row)."""
    per = hooi_iteration_flops(n, d, r, p, dimension_tree=True, subspace=True)
    return {k: iters * v for k, v in per.items()}


# ---------------------------------------------------------------------------
# Table 2 — communicated words (per rank, leading order)
# ---------------------------------------------------------------------------


def sthosvd_words(
    n: int, d: int, r: int, grid: Sequence[int]
) -> dict[str, float]:
    """STHOSVD bandwidth: LLSV ``(n^d/P)(P_1-1)/P_1 + d n^2``; TTM
    ``(r n^{d-1}/P)(P_1-1)``."""
    grid = tuple(int(g) for g in grid)
    p = math.prod(grid)
    _check(n, d, r, p)
    p1 = grid[0]
    return {
        "llsv": float(n) ** d / p * (p1 - 1) / p1 + d * float(n) ** 2,
        "ttm": r * float(n) ** (d - 1) / p * (p1 - 1),
    }


def hooi_iteration_words(
    n: int,
    d: int,
    r: int,
    grid: Sequence[int],
    *,
    dimension_tree: bool = True,
    subspace: bool = True,
) -> dict[str, float]:
    """Per-iteration HOOI bandwidth for the four variants (Table 2)."""
    grid = tuple(int(g) for g in grid)
    p = math.prod(grid)
    _check(n, d, r, p)
    out: dict[str, float] = {}
    if dimension_tree:
        out["ttm"] = (
            r * float(n) ** (d - 1) / p * (grid[0] - 1)
            + r * float(n) ** (d - 1) / p * (grid[-1] - 1)
        )
    else:
        p2 = grid[1] if d > 1 else 1
        out["ttm"] = (
            (d - 1) * r * float(n) ** (d - 1) / p * (grid[0] - 1)
            + r * float(n) ** (d - 1) / p * (p2 - 1)
        )
    if subspace:
        out["llsv"] = (
            float(r) ** d / p * sum(g - 1 for g in grid) + 2.0 * d * n * r
        )
    else:
        out["llsv"] = (
            n * float(r) ** (d - 1) / p * sum((g - 1) / g for g in grid)
            + d * float(n) ** 2
        )
    out["core_analysis"] = float(r) ** d
    return out
