"""Model-vs-measured attribution: join profiled spans to the ledger.

The headline claims rest on the alpha-beta-gamma machine model
(:class:`~repro.vmpi.cost.CostLedger`); the span profiler records
where wall-clock *actually* went.  This module joins the two per
phase: measured mean/max seconds across ranks, load imbalance
(max/mean), the critical path (per phase instance, the slowest rank's
interval — the time the run really spent there), the modeled seconds,
and a divergence flag.

Absolute seconds are not comparable — the model is parameterized for
the paper's machine, the measurement ran on whatever host executed the
test — so divergence is flagged on *shares*: a phase that takes x% of
modeled time but >2x% (or <x/2%) of measured time is doing something
the model does not capture (or vice versa).  Tiny phases (<2% on both
sides) are never flagged.

A second table joins the measured collectives per (phase, kind)
against the modeled ``*_comm`` charges — the (phase, collective-kind)
view of where communication time went.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.observability.profile import RunProfile
from repro.observability.spans import merge_intervals

__all__ = [
    "CollectiveRow",
    "PhaseRow",
    "attribution_rows",
    "collective_rows",
    "format_attribution_report",
    "parse_attribution_report",
]

#: measured phase -> the ledger phases it corresponds to.  The
#: executed layer tags coarse algorithm phases; the simulator charges
#: finer ones (see PHASES in repro.vmpi.trace), so the join aggregates
#: the model side per measured phase.
MODEL_PHASES: dict[str, tuple[str, ...]] = {
    "ttm": ("ttm", "ttm_comm"),
    "gram": ("gram", "gram_comm", "redistribute_comm", "evd"),
    "llsv": (
        "gram",
        "gram_comm",
        "redistribute_comm",
        "evd",
        "subspace",
        "subspace_comm",
        "qrcp",
    ),
    "core": ("core_analysis",),
    "core_comm": ("core_comm",),
}

#: share-ratio beyond which a phase is flagged as divergent, and the
#: minimum share (of either side) for the flag to be meaningful.
DIVERGENCE_RATIO = 2.0
DIVERGENCE_MIN_SHARE = 0.02


@dataclass(frozen=True)
class PhaseRow:
    """One measured phase joined against its modeled counterpart."""

    phase: str
    mean_s: float
    max_s: float
    imbalance: float  # max/mean across ranks
    critical_path_s: float  # sum over instances of slowest rank
    measured_share: float
    model_s: float | None
    model_share: float | None
    flag: str


@dataclass(frozen=True)
class CollectiveRow:
    """Measured collectives of one (phase, kind) pair."""

    phase: str
    op: str
    count: int  # per rank
    mean_s: float
    max_s: float


def _per_rank_phase_seconds(
    profile: RunProfile,
) -> dict[str, list[float]]:
    """phase -> measured seconds on each rank (interval union)."""
    out: dict[str, list[float]] = {}
    for p in profile.ranks:
        for phase, secs in p.phase_seconds().items():
            out.setdefault(phase, []).append(secs)
    return out


def _critical_path(profile: RunProfile, phase: str) -> float:
    """Sum over phase *instances* of the slowest rank's interval.

    Ranks execute the same loosely-synchronous schedule, so the k-th
    merged phase interval on each rank is the same algorithmic step;
    the run cannot leave that step before its slowest rank does.
    Ranks with fewer instances (e.g. a truncated partial profile)
    simply stop contributing to later instances.
    """
    per_rank = [
        p.phase_intervals().get(phase, []) for p in profile.ranks
    ]
    instances = max((len(iv) for iv in per_rank), default=0)
    total = 0.0
    for k in range(instances):
        durs = [
            iv[k][1] - iv[k][0] for iv in per_rank if k < len(iv)
        ]
        total += max(durs)
    return total


def attribution_rows(
    profile: RunProfile, model: dict[str, float] | None = None
) -> list[PhaseRow]:
    """Per-phase join, sorted by measured mean seconds descending.

    ``model`` is a ledger phase->seconds breakdown
    (:meth:`~repro.vmpi.cost.CostLedger.breakdown`); ``None`` yields
    measured-only rows.

    The join is total on both sides: measured phases with no modeled
    counterpart print ``-`` in the model columns, and ledger phases
    that no measured phase maps to (a partial profile from a crashed
    run, or a model charging work the executed layer never tagged)
    are appended as zero-measured rows flagged ``MODEL-ONLY`` rather
    than silently dropped.
    """
    per_phase = _per_rank_phase_seconds(profile)
    measured_total = sum(
        sum(v) / len(v) for v in per_phase.values()
    )
    model_total = sum(model.values()) if model else 0.0
    rows = []
    for phase, secs in per_phase.items():
        mean_s = sum(secs) / len(secs)
        max_s = max(secs)
        model_s: float | None = None
        model_share: float | None = None
        if model:
            model_s = sum(
                model.get(p, 0.0) for p in MODEL_PHASES.get(phase, ())
            )
            if model_total > 0:
                model_share = model_s / model_total
        measured_share = (
            mean_s / measured_total if measured_total > 0 else 0.0
        )
        flag = ""
        if model_share is not None and (
            measured_share > DIVERGENCE_MIN_SHARE
            or model_share > DIVERGENCE_MIN_SHARE
        ):
            hi = max(measured_share, model_share)
            lo = min(measured_share, model_share)
            if lo <= 0 or hi / lo > DIVERGENCE_RATIO:
                flag = "DIVERGENT"
        rows.append(
            PhaseRow(
                phase=phase,
                mean_s=mean_s,
                max_s=max_s,
                imbalance=max_s / mean_s if mean_s > 0 else 1.0,
                critical_path_s=_critical_path(profile, phase),
                measured_share=measured_share,
                model_s=model_s,
                model_share=model_share,
                flag=flag,
            )
        )
    rows.sort(key=lambda r: r.mean_s, reverse=True)
    if model:
        # Ledger phases no measured phase maps to: a crashed rank's
        # partial profile may be missing whole phases, and the model
        # may charge phases the executed layer never tags.  Surface
        # them instead of letting the join silently drop model time.
        covered: set[str] = set()
        for phase in per_phase:
            covered.update(MODEL_PHASES.get(phase, ()))
        for p in sorted(model):
            if p in covered or model[p] <= 0:
                continue
            model_share = (
                model[p] / model_total if model_total > 0 else None
            )
            rows.append(
                PhaseRow(
                    phase=p,
                    mean_s=0.0,
                    max_s=0.0,
                    imbalance=1.0,
                    critical_path_s=0.0,
                    measured_share=0.0,
                    model_s=model[p],
                    model_share=model_share,
                    flag="MODEL-ONLY",
                )
            )
    return rows


def collective_rows(profile: RunProfile) -> list[CollectiveRow]:
    """Measured collective time per (phase, kind), sorted descending.

    Collective spans never nest, so per-rank time is a plain sum; the
    per-rank call counts are identical by SPMD construction (asserted
    bit-identical elsewhere), so ``count`` reports rank 0's.
    """
    acc: dict[tuple[str, str], list[float]] = {}
    counts: dict[tuple[str, str], int] = {}
    for p in profile.ranks:
        per_rank: dict[tuple[str, str], float] = {}
        for s in p.by_category("collective"):
            key = (s.phase, s.name)
            per_rank[key] = per_rank.get(key, 0.0) + s.seconds
            if p.rank == profile.ranks[0].rank:
                counts[key] = counts.get(key, 0) + 1
        for key, secs in per_rank.items():
            acc.setdefault(key, []).append(secs)
    rows = [
        CollectiveRow(
            phase=phase,
            op=op,
            count=counts.get((phase, op), 0),
            mean_s=sum(secs) / len(secs),
            max_s=max(secs),
        )
        for (phase, op), secs in acc.items()
    ]
    rows.sort(key=lambda r: r.mean_s, reverse=True)
    return rows


def _wait_transfer_line(profile: RunProfile) -> str | None:
    """One-line wait-vs-transfer split from the recv histograms.

    With ``CommConfig.overlap`` the pipelined collectives attribute
    receive waits that ran concurrently with payload math to
    ``collective_wait_hidden_seconds``; the line then reports the
    visible wait share *and* how much wait the overlap hid, so an
    overlap-on run shows its wait-share reduction directly here.
    """
    wait = hidden = transfer = 0.0
    for p in profile.ranks:
        hists = p.metrics.get("histograms", {})
        wait += hists.get("collective_wait_seconds", {}).get(
            "total", 0.0
        )
        hidden += hists.get(
            "collective_wait_hidden_seconds", {}
        ).get("total", 0.0)
        transfer += hists.get(
            "collective_transfer_seconds", {}
        ).get("total", 0.0)
    if wait + hidden + transfer <= 0:
        return None
    share = wait / (wait + hidden + transfer)
    line = (
        f"collective receive time: {wait:.4g}s blocked wait + "
        f"{transfer:.4g}s payload transfer "
        f"({share * 100:.0f}% visible wait) across all ranks"
    )
    if hidden > 0:
        line += (
            f"; {hidden:.4g}s further wait hidden behind compute "
            "by comm/compute overlap"
        )
    return line


def _recovery_line(profile: RunProfile) -> str | None:
    """One-line elastic-recovery cost summary from the recovery
    histograms (``repro.distributed.recovery``).

    ``buddy_replicate_seconds`` is the steady-state premium every
    elastic sweep pays; ``recovery_seconds`` (detect + revoke + agree)
    appears only on runs that actually absorbed a failure.
    """
    replicate = recover = agree = 0.0
    episodes = 0
    for p in profile.ranks:
        hists = p.metrics.get("histograms", {})
        replicate += hists.get("buddy_replicate_seconds", {}).get(
            "total", 0.0
        )
        rec = hists.get("recovery_seconds", {})
        recover += rec.get("total", 0.0)
        episodes += int(rec.get("count", 0))
        agree += hists.get("recovery_agree_seconds", {}).get(
            "total", 0.0
        )
    if replicate + recover <= 0:
        return None
    line = (
        f"elastic recovery: {replicate:.4g}s buddy replication "
        "across all ranks"
    )
    if recover > 0:
        line += (
            f"; {recover:.4g}s failure handling "
            f"({agree:.4g}s agreement) across {episodes} "
            "survivor reports"
        )
    return line


def format_attribution_report(
    profile: RunProfile,
    model: dict[str, float] | None = None,
    *,
    model_label: str = "",
) -> str:
    """The printable model-vs-measured report."""
    phase_rows = attribution_rows(profile, model)
    header = (
        f"Measured-vs-modeled attribution ({profile.size} ranks"
        + (f", model: {model_label}" if model_label else "")
        + ")"
    )
    sections = [
        format_table(
            [
                "phase",
                "measured mean s",
                "measured max s",
                "imbalance",
                "critical path s",
                "measured share",
                "modeled s",
                "modeled share",
                "flag",
            ],
            [
                [
                    r.phase,
                    r.mean_s,
                    r.max_s,
                    r.imbalance,
                    r.critical_path_s,
                    f"{r.measured_share * 100:.1f}%",
                    "-" if r.model_s is None else r.model_s,
                    "-"
                    if r.model_share is None
                    else f"{r.model_share * 100:.1f}%",
                    r.flag or "-",
                ]
                for r in phase_rows
            ],
            title=header,
        ),
        format_table(
            ["phase", "collective", "count", "mean s", "max s"],
            [
                [r.phase or "(untagged)", r.op, r.count, r.mean_s, r.max_s]
                for r in collective_rows(profile)
            ],
            title="Measured collectives per (phase, kind)",
        ),
    ]
    wait_line = _wait_transfer_line(profile)
    if wait_line is not None:
        sections.append(wait_line)
    recovery_line = _recovery_line(profile)
    if recovery_line is not None:
        sections.append(recovery_line)
    if model:
        sections.append(
            "shares, not absolute seconds, carry the comparison: the "
            "model prices the paper's machine, the measurement this "
            "host."
        )
    return "\n\n".join(sections)


def parse_attribution_report(text: str) -> list[dict[str, str]]:
    """Parse the phase table back out of a formatted report.

    The CI smoke job and tests use this to assert the report stayed
    machine-readable; raises ``ValueError`` when the table is missing
    or malformed.
    """
    lines = text.splitlines()
    try:
        head_idx = next(
            i
            for i, line in enumerate(lines)
            if line.startswith("phase  ")
        )
    except StopIteration:
        raise ValueError("no phase table header found") from None
    header = lines[head_idx]
    rule = lines[head_idx + 1]
    # Column starts come from the dashed rule (columns are two-space
    # separated, but header titles themselves contain single spaces).
    starts = [0] + [
        i for i in range(1, len(rule)) if rule[i] == "-" and rule[i - 1] == " "
    ]
    def cells(line: str) -> list[str]:
        out = []
        for j, a in enumerate(starts):
            b = starts[j + 1] if j + 1 < len(starts) else len(line)
            out.append(line[a:b].strip())
        return out
    names = cells(header)
    rows = []
    for line in lines[head_idx + 2:]:
        if not line.strip():
            break
        rows.append(dict(zip(names, cells(line))))
    if not rows:
        raise ValueError("phase table has no rows")
    for row in rows:
        # Every cell must be numeric or the explicit "-" placeholder
        # (model columns of measured-only rows, and vice versa for
        # MODEL-ONLY rows) — anything else means the table drifted.
        for key in ("measured mean s", "imbalance", "critical path s",
                    "modeled s"):
            value = row.get(key, "-")
            if value != "-":
                try:
                    float(value)
                except ValueError:
                    raise ValueError(
                        f"phase {row.get('phase', '?')!r}: column "
                        f"{key!r} is neither numeric nor '-': "
                        f"{value!r}"
                    ) from None
    return rows
