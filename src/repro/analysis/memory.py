"""Memory-feasibility analysis (single-node tensor sizing).

The paper "chooses tensor dimensions to maximize the size of the tensor
that can fit on a single node (in single precision)" — 3750^3 for the
3-way study and 560^4 for the 4-way one, on 512 GB Perlmutter nodes.
These helpers reproduce that sizing and let experiments check whether a
configuration's simulated peak memory fits the machine (the artifact's
reviewers hit out-of-memory failures on exactly this).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = ["tensor_fits", "max_cubic_dim", "required_nodes"]

#: Default resident-set multiple of the input tensor: the input block
#: plus the dominant first-TTM partial and generator/IO staging.  The
#: paper's 4-way pick 560^4 x 4 B x ~1.3 ~= 512 GB is consistent with
#: ~1.3; we default a touch higher to stay conservative.
DEFAULT_WORKSPACE_FACTOR = 1.3


def tensor_fits(
    shape: Sequence[int],
    *,
    p: int = 1,
    dtype_bytes: int = 4,
    machine: MachineModel | None = None,
    workspace_factor: float = DEFAULT_WORKSPACE_FACTOR,
) -> bool:
    """Whether a tensor (plus workspace) fits in ``p`` ranks' memory."""
    machine = machine or perlmutter_like()
    elements = math.prod(int(s) for s in shape)
    need_bytes = workspace_factor * elements * dtype_bytes / max(p, 1)
    have_bytes = machine.mem_words_per_rank(p) * 8
    return need_bytes <= have_bytes


def max_cubic_dim(
    d: int,
    *,
    p: int = 1,
    dtype_bytes: int = 4,
    machine: MachineModel | None = None,
    workspace_factor: float = DEFAULT_WORKSPACE_FACTOR,
    granularity: int = 10,
) -> int:
    """Largest ``n`` (a multiple of ``granularity``) such that an
    ``n^d`` tensor fits in ``p`` ranks' memory."""
    if d < 1:
        raise ValueError("d must be positive")
    machine = machine or perlmutter_like()
    have_bytes = machine.mem_words_per_rank(p) * 8 * max(p, 1)
    n = (have_bytes / (workspace_factor * dtype_bytes)) ** (1.0 / d)
    return int(n // granularity) * granularity


def required_nodes(
    shape: Sequence[int],
    *,
    dtype_bytes: int = 4,
    machine: MachineModel | None = None,
    workspace_factor: float = DEFAULT_WORKSPACE_FACTOR,
) -> int:
    """Minimum node count whose aggregate memory holds the tensor."""
    machine = machine or perlmutter_like()
    elements = math.prod(int(s) for s in shape)
    need_bytes = workspace_factor * elements * dtype_bytes
    node_bytes = machine.node_mem_words * 8
    return max(1, math.ceil(need_bytes / node_bytes))
