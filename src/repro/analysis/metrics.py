"""Compression metrics used across the experiment harness."""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["compression_ratio", "relative_size", "tucker_storage"]


def tucker_storage(shape: Sequence[int], ranks: Sequence[int]) -> int:
    """Tucker storage ``prod(r) + sum(n_j r_j)`` for given shapes."""
    shape = tuple(int(n) for n in shape)
    ranks = tuple(int(r) for r in ranks)
    if len(shape) != len(ranks):
        raise ValueError("shape/ranks order mismatch")
    return math.prod(ranks) + sum(n * r for n, r in zip(shape, ranks))


def compression_ratio(shape: Sequence[int], ranks: Sequence[int]) -> float:
    """Original entries over stored entries (larger is better)."""
    return math.prod(int(n) for n in shape) / tucker_storage(shape, ranks)


def relative_size(shape: Sequence[int], ranks: Sequence[int]) -> float:
    """Stored entries over original entries (the paper's y-axis in the
    error-vs-size plots; smaller is better)."""
    return tucker_storage(shape, ranks) / math.prod(int(n) for n in shape)
