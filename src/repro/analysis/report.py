"""Markdown report generation from regenerated results.

Collects every ``results/*.txt`` artifact produced by the benchmark
harness into one markdown document — a machine-generated companion to
the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["generate_report", "SECTIONS"]

#: ordered (stem, heading) pairs; stems missing from the results dir
#: are listed as not-yet-regenerated rather than dropped.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_flops", "Table 1 — flop costs"),
    ("table1_dt_factor", "Table 1 — dimension-tree factor"),
    ("table2_words", "Table 2 — communication"),
    ("table2_grid_preferences", "Table 2 — grid preferences"),
    ("fig2_3way_scaling", "Figure 2 (top) — 3-way strong scaling"),
    ("fig2_4way_scaling", "Figure 2 (bottom) — 4-way strong scaling"),
    ("fig3_3way_breakdown", "Figure 3 (top) — 3-way breakdown"),
    ("fig3_4way_breakdown", "Figure 3 (bottom) — 4-way breakdown"),
    ("fig4_miranda_progression", "Figure 4 — Miranda progression"),
    ("fig5_miranda_breakdown", "Figure 5 — Miranda breakdown"),
    ("fig6_hcci_progression", "Figure 6 — HCCI progression"),
    ("fig7_hcci_breakdown", "Figure 7 — HCCI breakdown"),
    ("fig8_sp_progression", "Figure 8 — SP progression"),
    ("fig9_sp_breakdown", "Figure 9 — SP breakdown"),
    ("ablation_truncation", "Ablation — truncation solver"),
    ("ablation_adaptation", "Ablation — adaptation strategy"),
    ("ablation_alpha", "Ablation — growth factor"),
    ("ablation_subspace_sweeps", "Ablation — subspace sweeps"),
    ("ablation_tree_split", "Ablation — tree shape"),
    ("ablation_llsv_kernels", "Ablation — LLSV kernels"),
    ("ablation_mode_order", "Ablation — mode order"),
    ("weak_scaling", "Extension — weak scaling"),
    ("grid_search", "Extension — grid search"),
    ("memory_sizing", "Extension — memory sizing"),
    ("memory_peak_scaling", "Extension — peak memory"),
    ("roofline", "Extension — roofline"),
    ("machine_sensitivity", "Extension — machine-model sensitivity"),
    ("decompression", "Extension — region decompression"),
    ("crossover", "Analysis — §3.1 n/r crossover"),
    ("mp_transport", "Infrastructure — mp transport shoot-out"),
    ("mp_dimension_tree", "Infrastructure — memoized vs direct mp HOOI"),
    ("verify_overhead", "Infrastructure — SPMD verifier overhead"),
    ("race_overhead", "Infrastructure — race-sanitizer overhead"),
    ("profiler_overhead", "Infrastructure — span-profiler overhead"),
    ("telemetry_overhead", "Infrastructure — flight-recorder overhead"),
    ("kernels_speedup", "Infrastructure — native kernels vs tensordot"),
    ("overlap", "Infrastructure — comm/compute overlap"),
    ("recovery", "Infrastructure — elastic recovery vs full restart"),
)


def generate_report(
    results_dir: str | Path,
    *,
    title: str = "Regenerated results",
) -> str:
    """Assemble all regenerated tables into one markdown document."""
    results_dir = Path(results_dir)
    parts = [f"# {title}", ""]
    missing = []
    for stem, heading in SECTIONS:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            missing.append(heading)
            continue
        parts.append(f"## {heading}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    if missing:
        parts.append("## Not regenerated in this run")
        parts.append("")
        for heading in missing:
            parts.append(f"- {heading}")
        parts.append("")
    return "\n".join(parts)
