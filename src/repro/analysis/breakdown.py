"""Grouping of ledger phases into the paper's breakdown categories.

The Fig. 3/5/7/9 running-time breakdowns stack a handful of categories;
this module maps the ledger's fine-grained phases onto them.
"""

from __future__ import annotations

__all__ = ["DISPLAY_GROUPS", "group_breakdown"]

#: display category -> ledger phases it aggregates
DISPLAY_GROUPS: dict[str, tuple[str, ...]] = {
    "TTM": ("ttm", "ttm_comm"),
    "Gram": ("gram", "gram_comm", "redistribute_comm"),
    "EVD": ("evd",),
    "Subspace": ("subspace", "subspace_comm"),
    "QRCP": ("qrcp",),
    "Core analysis": ("core_analysis", "core_comm"),
}


def group_breakdown(breakdown: dict[str, float]) -> dict[str, float]:
    """Aggregate a ledger phase->seconds map into display categories.

    Phases not covered by :data:`DISPLAY_GROUPS` are reported under
    ``"Other"`` so nothing is silently dropped.
    """
    covered: set[str] = set()
    out: dict[str, float] = {}
    for label, phases in DISPLAY_GROUPS.items():
        total = sum(breakdown.get(p, 0.0) for p in phases)
        covered.update(phases)
        if total > 0:
            out[label] = total
    other = sum(v for k, v in breakdown.items() if k not in covered)
    if other > 0:
        out["Other"] = other
    return out
