"""Convergence diagnostics for the iterative algorithms.

Beyond the error-change stop used by HOOI, these helpers measure how
much the factor *subspaces* actually move between iterations — the
quantity that justifies the paper's single-subspace-iteration choice
(§3.4: "we use an accurate initialization (from the previous HOOI
iteration)").
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "principal_angles",
    "subspace_distance",
    "max_factor_movement",
    "error_improvement",
]


def principal_angles(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Principal angles (radians, ascending) between two column spaces.

    Both inputs must have orthonormal columns; dimensions may differ
    (angles are computed for the smaller subspace).
    """
    if u.shape[0] != v.shape[0]:
        raise ValueError("subspaces live in different ambient dimensions")
    s = np.linalg.svd(u.T @ v, compute_uv=False)
    s = np.clip(s, -1.0, 1.0)
    # SVD returns cosines in descending order, so arccos is ascending.
    return np.arccos(s)


def subspace_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Largest principal angle, normalized to [0, 1] (1 = orthogonal)."""
    angles = principal_angles(u, v)
    return float(angles[-1] / (math.pi / 2)) if angles.size else 0.0


def max_factor_movement(
    previous: list[np.ndarray], current: list[np.ndarray]
) -> float:
    """Largest per-mode subspace distance between two factor sets."""
    if len(previous) != len(current):
        raise ValueError("factor lists differ in length")
    return max(
        (subspace_distance(a, b) for a, b in zip(previous, current)),
        default=0.0,
    )


def error_improvement(errors: list[float]) -> list[float]:
    """Per-iteration error decrease (non-negative for a descent method)."""
    return [a - b for a, b in zip(errors, errors[1:])]
