"""Dimension-tree memoization of HOOI's multi-TTMs (paper §3.3, Alg. 4).

Consecutive HOOI subiterations share ``d - 2`` of their TTMs.  The
dimension tree reuses partially contracted tensors: each node holds the
set of modes *not yet contracted*; an edge performs the TTMs that
separate parent from child; factors are updated at the leaves.

Partitioning heuristic (matches the paper's Fig. 1 discussion):

* ``eta`` = the leading half of the remaining modes, ``mu`` = the
  trailing half;
* the *trailing* block ``mu`` is contracted first — in reverse mode
  order, so the very first TTM off the root is in mode ``d`` (best local
  layout) — and the recursion then updates the leading-half factors;
* then the leading block ``eta`` is contracted (in increasing order,
  starting at mode 1) using the *freshly updated* factors, and the
  recursion updates the trailing-half factors.

Hence leaves are visited in increasing mode order and the core is formed
at the final leaf (mode ``d``), exactly one TTM after the last factor
update.  The two TTMs adjacent to the root dominate, giving the
``4 r n^d / P`` flop count of Table 1.

The traversal is written against a small engine protocol so the exact
same tree logic drives the sequential kernels here and the distributed
kernels in :mod:`repro.distributed`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Protocol

import numpy as np

from repro.linalg.llsv import LLSVMethod, llsv
from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.ops import ttm

__all__ = [
    "split_modes",
    "tree_nodes",
    "leaf_order",
    "contraction_schedule",
    "tree_applicable",
    "memoized_ttm_count",
    "direct_ttm_count",
    "TreeEngine",
    "SequentialTreeEngine",
    "hooi_iteration_dt",
    "hooi_iteration_direct",
]


#: Available tree-shape heuristics (Kaya & Robert study optimal trees;
#: the paper uses the balanced "half" heuristic).
SPLIT_RULES = ("half", "single")


def split_modes(
    modes: Sequence[int], rule: str = "half"
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Partition remaining ``modes`` into ``(mu, eta)`` per Alg. 4 line 8.

    ``mu`` is contracted first, in *reverse* order (its TTMs run highest
    mode first); ``eta`` is recursed first, in increasing order.

    Rules:

    * ``"half"`` — the paper's balanced split: ``eta`` is the leading
      half, ``mu`` the trailing half.
    * ``"single"`` — a maximally skewed "caterpillar" tree: ``eta`` is
      just the leading mode.  Asymptotically worse (O(d^2) TTMs instead
      of O(d log d)); kept as the tree-shape ablation.
    """
    ms = tuple(modes)
    if len(ms) < 2:
        raise ValueError("cannot split fewer than two modes")
    if rule == "half":
        half = len(ms) // 2
    elif rule == "single":
        half = 1
    else:
        raise ValueError(f"unknown split rule {rule!r}; pick from {SPLIT_RULES}")
    eta = ms[:half]
    mu = tuple(reversed(ms[half:]))
    return mu, eta


def _walk(
    modes: tuple[int, ...],
    nodes: list[frozenset[int]],
    leaves: list[int],
    ttms: list[int],
    rule: str,
) -> None:
    nodes.append(frozenset(modes))
    if len(modes) == 1:
        leaves.append(modes[0])
        return
    mu, eta = split_modes(modes, rule)
    ttms.extend(mu)
    _walk(eta, nodes, leaves, ttms, rule)
    ttms.extend(eta)
    _walk(mu[::-1], nodes, leaves, ttms, rule)


def tree_nodes(d: int, rule: str = "half") -> list[frozenset[int]]:
    """All tree nodes (sets of uncontracted modes) in visit order."""
    nodes: list[frozenset[int]] = []
    _walk(tuple(range(d)), nodes, [], [], rule)
    return nodes


def leaf_order(d: int, rule: str = "half") -> list[int]:
    """Order in which factor modes are updated (leaves visited)."""
    leaves: list[int] = []
    _walk(tuple(range(d)), [], leaves, [], rule)
    return leaves


def contraction_schedule(d: int, rule: str = "half") -> list[int]:
    """Modes of every TTM performed during one tree traversal, in order.

    Each entry is one TTM; length is the per-iteration TTM count, used
    by the cost-model cross-checks of Table 1.
    """
    ttms: list[int] = []
    _walk(tuple(range(d)), [], [], ttms, rule)
    return ttms


def tree_applicable(d: int) -> bool:
    """Whether the dimension tree can memoize anything for order ``d``.

    With fewer than three modes the tree degenerates: consecutive
    subiterations share no TTMs, so the memoized traversal performs
    exactly as many TTMs as the direct sweep.  Drivers use this guard
    to fall back to the direct subiteration for 1-D/2-D inputs (the
    traversal itself also handles them, but engines that pay a setup
    cost per tree node have nothing to gain).
    """
    return d >= 3


def memoized_ttm_count(
    d: int, rule: str = "half", *, include_core: bool = True
) -> int:
    """Per-iteration TTM count of the memoized traversal (closed form).

    Solves the recurrence ``T(1) = 0``,
    ``T(k) = k + T(|eta|) + T(|mu|)`` implied by Alg. 4 — every
    internal node contracts all of one child's complement (``|mu|``
    then ``|eta|`` TTMs, i.e. ``k`` total) before recursing into both
    children.  With ``include_core`` the final core-forming TTM at the
    last leaf is counted too; the result then equals
    ``len(contraction_schedule(d, rule)) + 1``, the quantity the
    executed-schedule tests certify against mp traces (Table 1).
    """
    if d < 1:
        raise ValueError("d must be positive")

    def t(k: int) -> int:
        if k == 1:
            return 0
        half = k // 2 if rule == "half" else 1
        if rule not in SPLIT_RULES:
            raise ValueError(
                f"unknown split rule {rule!r}; pick from {SPLIT_RULES}"
            )
        return k + t(half) + t(k - half)

    return t(d) + (1 if include_core else 0)


def direct_ttm_count(d: int, *, include_core: bool = True) -> int:
    """Per-iteration TTM count of the direct sweep (Alg. 2).

    ``d`` subiterations of ``d - 1`` TTMs each, plus (optionally) the
    single core-forming TTM after the last factor update.
    """
    if d < 1:
        raise ValueError("d must be positive")
    return d * (d - 1) + (1 if include_core else 0)


class TreeEngine(Protocol):
    """Operations the tree traversal needs; see module docstring.

    The ``tensor`` argument is opaque to the traversal: engines choose
    their own state representation (a dense array, a
    ``(blocks, layout)`` pair, a ``(block, layout, signature)`` triple
    for engines that memoize partial contractions across calls).  The
    traversal only threads states from ``contract`` into the
    recursion, so whatever ``contract`` returns is what the leaf
    operations receive.
    """

    last_mode: int

    def contract(
        self, tensor: object, modes: Sequence[int]
    ) -> object:  # pragma: no cover - protocol
        """Multi-TTM of ``tensor`` with ``U_m^T`` for each ``m`` in order."""
        ...

    def update_factor(
        self, tensor: object, mode: int
    ) -> None:  # pragma: no cover - protocol
        """LLSV update of factor ``mode`` from the all-but-one tensor."""
        ...

    def form_core(
        self, tensor: object, mode: int
    ) -> None:  # pragma: no cover - protocol
        """Final TTM producing the core at the last leaf."""
        ...


def _recurse(
    engine: TreeEngine,
    tensor: object,
    modes: tuple[int, ...],
    rule: str,
) -> None:
    if len(modes) == 1:
        (mode,) = modes
        engine.update_factor(tensor, mode)
        if mode == engine.last_mode:
            engine.form_core(tensor, mode)
        return
    mu, eta = split_modes(modes, rule)
    _recurse(engine, engine.contract(tensor, mu), eta, rule)
    _recurse(engine, engine.contract(tensor, eta), mu[::-1], rule)


def hooi_iteration_dt(
    x: object, engine: TreeEngine, *, rule: str = "half"
) -> None:
    """Run one full HOOI iteration via the dimension tree (Alg. 4)."""
    _recurse(engine, x, tuple(range(engine.last_mode + 1)), rule)


class SequentialTreeEngine:
    """Dense single-process engine for :func:`hooi_iteration_dt`.

    Holds the factor list (updated in place across the traversal, which
    is what makes the memoization correct: later contractions see
    earlier updates) and accumulates per-phase wall time.
    """

    def __init__(
        self,
        factors: list[np.ndarray],
        ranks: Sequence[int],
        *,
        llsv_method: LLSVMethod = LLSVMethod.SUBSPACE,
        n_subspace_iters: int = 1,
        timings: dict[str, float] | None = None,
    ) -> None:
        self.factors = factors
        self.ranks = tuple(int(r) for r in ranks)
        self.llsv_method = llsv_method
        self.n_subspace_iters = n_subspace_iters
        self.last_mode = len(factors) - 1
        self.core: np.ndarray | None = None
        self.timings = timings if timings is not None else {}

    def _tick(self, phase: str, t0: float) -> None:
        self.timings[phase] = (
            self.timings.get(phase, 0.0) + time.perf_counter() - t0
        )

    def contract(
        self, tensor: np.ndarray, modes: Sequence[int]
    ) -> np.ndarray:
        """Multi-TTM with ``U_m^T`` for each listed mode, in order."""
        t0 = time.perf_counter()
        out = tensor
        for m in modes:
            out = ttm(out, self.factors[m], m, transpose=True)
        self._tick("ttm", t0)
        return out

    def update_factor(self, tensor: np.ndarray, mode: int) -> None:
        """LLSV update of ``factors[mode]`` from the all-but-one tensor."""
        t0 = time.perf_counter()
        if self.llsv_method is LLSVMethod.SUBSPACE:
            self.factors[mode] = subspace_iteration_llsv(
                tensor,
                mode,
                self.factors[mode],
                self.ranks[mode],
                n_iters=self.n_subspace_iters,
            )
        else:
            res = llsv(
                tensor,
                mode,
                rank=self.ranks[mode],
                method=self.llsv_method,
                u_prev=self.factors[mode],
            )
            self.factors[mode] = res.factor
        self._tick("llsv", t0)

    def form_core(self, tensor: np.ndarray, mode: int) -> None:
        """Final TTM producing the core at the last leaf."""
        t0 = time.perf_counter()
        self.core = ttm(tensor, self.factors[mode], mode, transpose=True)
        self._tick("ttm", t0)


def hooi_iteration_direct(
    x: np.ndarray,
    factors: list[np.ndarray],
    ranks: Sequence[int],
    *,
    llsv_method: LLSVMethod = LLSVMethod.GRAM_EVD,
    n_subspace_iters: int = 1,
    timings: dict[str, float] | None = None,
) -> np.ndarray:
    """One HOOI iteration with *direct* (unmemoized) multi-TTMs (Alg. 2).

    Updates ``factors`` in place and returns the core tensor computed
    from the final subiteration's intermediate (Alg. 2, line 9).
    """
    from repro.tensor.ops import multi_ttm  # local import avoids cycle

    d = x.ndim
    ranks = tuple(int(r) for r in ranks)
    timings = timings if timings is not None else {}

    def tick(phase: str, t0: float) -> None:
        timings[phase] = timings.get(phase, 0.0) + time.perf_counter() - t0

    y = x
    for j in range(d):
        t0 = time.perf_counter()
        y = multi_ttm(x, factors, transpose=True, skip=j)
        tick("ttm", t0)
        t0 = time.perf_counter()
        if llsv_method is LLSVMethod.SUBSPACE:
            factors[j] = subspace_iteration_llsv(
                y, j, factors[j], ranks[j], n_iters=n_subspace_iters
            )
        else:
            res = llsv(y, j, rank=ranks[j], method=llsv_method)
            factors[j] = res.factor
        tick("llsv", t0)
    t0 = time.perf_counter()
    core = ttm(y, factors[d - 1], d - 1, transpose=True)
    tick("ttm", t0)
    return core
