"""The Tucker-format tensor: core plus factor matrices.

A rank-``(r_1, ..., r_d)`` Tucker tensor stores a core ``G`` of that
shape and factors ``U_j`` of shape ``n_j x r_j``, representing
``X^ = G x_1 U_1 x_2 ... x_d U_d``.  Storage is
``prod(r_j) + sum(n_j r_j)`` values — the objective of the
error-specified problem (paper eq. (2)).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.tensor.dense import tensor_norm
from repro.tensor.ops import multi_ttm, relative_error

__all__ = ["TuckerTensor"]


@dataclass
class TuckerTensor:
    """A Tucker decomposition ``[G; U_1, ..., U_d]``.

    Attributes
    ----------
    core:
        The ``r_1 x ... x r_d`` core tensor.
    factors:
        Per-mode factor matrices, ``factors[j].shape == (n_j, r_j)``.
    """

    core: np.ndarray
    factors: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.factors) != self.core.ndim:
            raise ValueError(
                f"core has {self.core.ndim} modes but {len(self.factors)} "
                "factors were given"
            )
        for j, (u, r) in enumerate(zip(self.factors, self.core.shape)):
            if u.ndim != 2 or u.shape[1] != r:
                raise ValueError(
                    f"factor {j} has shape {u.shape}; expected (*, {r})"
                )

    # -- shape metadata -------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.core.ndim

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.shape

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the reconstructed (full) tensor."""
        return tuple(u.shape[0] for u in self.factors)

    # -- storage & compression ------------------------------------------

    def storage_size(self) -> int:
        """Number of stored values: ``prod(r) + sum(n_j r_j)`` (eq. 2)."""
        return int(self.core.size) + sum(int(u.size) for u in self.factors)

    def full_size(self) -> int:
        """Number of entries of the reconstructed tensor."""
        return math.prod(self.shape)

    def compression_ratio(self) -> float:
        """Original size over compressed size (larger is better)."""
        return self.full_size() / self.storage_size()

    # -- numerics --------------------------------------------------------

    def reconstruct(self) -> np.ndarray:
        """Materialize the full tensor ``G x_1 U_1 ... x_d U_d``."""
        return multi_ttm(self.core, self.factors)

    def core_norm(self) -> float:
        """Tensor norm of the core, ``||G||``."""
        return tensor_norm(self.core)

    def relative_error_via_core(self, x_norm: float) -> float:
        """Approximation error from the norm identity (orthonormal factors).

        ``||X - X^||^2 = ||X||^2 - ||G||^2`` holds when the factors are
        orthonormal and ``G = X x_1 U_1^T ... x_d U_d^T`` (§3.2); this
        avoids reconstructing the full tensor.
        """
        if x_norm <= 0:
            raise ValueError("x_norm must be positive")
        gap = max(x_norm * x_norm - self.core_norm() ** 2, 0.0)
        return math.sqrt(gap) / x_norm

    def relative_error(self, x: np.ndarray) -> float:
        """Exact relative error against a reference tensor."""
        return relative_error(x, self.reconstruct())

    def is_orthonormal(self, atol: float = 1e-8) -> bool:
        """Whether every factor has orthonormal columns."""
        return all(
            np.allclose(u.T @ u, np.eye(u.shape[1]), atol=atol)
            for u in self.factors
        )

    # -- truncation -------------------------------------------------------

    def truncate(self, ranks: Sequence[int]) -> "TuckerTensor":
        """Leading-subtensor truncation to ``ranks``.

        Keeps ``core[:r_1, ..., :r_d]`` and the leading ``r_j`` columns
        of each factor — exactly the operation of Alg. 3, line 7.  Any
        such truncation is itself a valid Tucker approximation.
        """
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != self.ndim:
            raise ValueError("rank tuple order mismatch")
        if any(
            not 1 <= r <= cur for r, cur in zip(ranks, self.ranks)
        ):
            raise ValueError(
                f"truncation ranks {ranks} invalid for current {self.ranks}"
            )
        sl = tuple(slice(0, r) for r in ranks)
        return TuckerTensor(
            core=np.ascontiguousarray(self.core[sl]),
            factors=[
                np.ascontiguousarray(u[:, :r])
                for u, r in zip(self.factors, ranks)
            ],
        )

    def extract_subtensor(self, region: Sequence[slice]) -> np.ndarray:
        """Decompress only a subregion of the full tensor.

        The Tucker format's key practical advantage (paper §1): a
        subtensor is reconstructed by row-slicing the factors, never
        forming the full tensor.
        """
        region = tuple(region)
        if len(region) != self.ndim:
            raise ValueError("one slice per mode required")
        sliced = [u[s, :] for u, s in zip(self.factors, region)]
        return multi_ttm(self.core, sliced)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TuckerTensor(shape={self.shape}, ranks={self.ranks}, "
            f"compression={self.compression_ratio():.2f}x)"
        )
