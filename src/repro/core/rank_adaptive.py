"""Rank-adaptive HOOI — the paper's Alg. 3 (RA-HOSI-DT by default).

Solves the *error-specified* Tucker problem with HOOI by (a) growing all
ranks by a factor ``alpha`` while the iterate misses the error budget
and (b) shrinking them via core analysis (eq. (3)) once it is met.  The
core is formed every iteration, so the error check is the free norm
identity ``||X - X^||^2 = ||X||^2 - ||G||^2``.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.core_analysis import (
    greedy_rank_truncation,
    leading_subtensor_energies,
    solve_rank_truncation,
)
from repro.core.dimension_tree import (
    SequentialTreeEngine,
    hooi_iteration_direct,
    hooi_iteration_dt,
)
from repro.core.errors import ConfigError
from repro.core.tucker import TuckerTensor
from repro.linalg.llsv import LLSVMethod
from repro.tensor.dense import tensor_norm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks

__all__ = [
    "RankAdaptiveOptions",
    "RankAdaptiveStats",
    "IterationRecord",
    "expand_factor",
    "rank_adaptive_hooi",
]


@dataclass(frozen=True)
class RankAdaptiveOptions:
    """Control knobs of Alg. 3.

    Attributes
    ----------
    alpha:
        Rank growth factor applied when the error budget is missed
        (paper: "we typically use 1.5 or 2").
    max_iters:
        HOOI iteration cap (the paper's dataset studies cap at 3).
    stop_at_threshold:
        Stop at the first iteration that satisfies the budget (the
        paper's time-to-solution comparisons); when false, continue to
        ``max_iters`` to chase better compression (their error-vs-size
        progressions).
    use_dimension_tree, llsv_method, n_subspace_iters:
        Same meaning as in :class:`repro.core.hooi.HOOIOptions`;
        defaults give RA-HOSI-DT.
    truncation:
        ``"exhaustive"`` (eq. (3)) or ``"greedy"`` (ablation).
    seed:
        RNG seed for factor initialization/expansion.
    """

    alpha: float = 1.5
    max_iters: int = 3
    stop_at_threshold: bool = True
    use_dimension_tree: bool = True
    llsv_method: LLSVMethod = LLSVMethod.SUBSPACE
    n_subspace_iters: int = 1
    truncation: str = "exhaustive"
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ConfigError("alpha must exceed 1 for ranks to grow")
        if self.max_iters < 1:
            raise ConfigError("max_iters must be at least 1")
        if self.truncation not in ("exhaustive", "greedy"):
            raise ConfigError(f"unknown truncation {self.truncation!r}")
        if self.llsv_method not in (LLSVMethod.GRAM_EVD, LLSVMethod.SUBSPACE):
            raise ConfigError("RA-HOOI supports GRAM_EVD or SUBSPACE kernels")


@dataclass
class IterationRecord:
    """Snapshot after one RA-HOOI iteration (feeds Figs. 4/6/8)."""

    iteration: int
    ranks_used: tuple[int, ...]
    error: float
    satisfied: bool
    storage_size: int
    seconds: float
    truncated_ranks: tuple[int, ...] | None = None
    truncated_error: float | None = None
    truncated_storage: int | None = None


@dataclass
class RankAdaptiveStats:
    """Run-level diagnostics for :func:`rank_adaptive_hooi`."""

    x_norm: float = 0.0
    history: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    #: iteration index (1-based) at which the budget was first met
    first_satisfied: int | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)


def expand_factor(
    u: np.ndarray,
    new_rank: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Grow a factor to ``new_rank`` orthonormal columns.

    Appends a random orthonormal complement of the existing column
    space, so previous iterations' information is preserved while the
    subspace widens (needed when ranks are increased between subspace
    iterations).
    """
    n, r = u.shape
    if new_rank <= r:
        return u
    if new_rank > n:
        raise ValueError(f"cannot expand to {new_rank} columns in R^{n}")
    g = rng.standard_normal((n, new_rank - r)).astype(u.dtype, copy=False)
    # Two projection passes for numerical orthogonality.
    for _ in range(2):
        g -= u @ (u.T @ g)
    q, _ = np.linalg.qr(g)
    return np.hstack([u, q.astype(u.dtype, copy=False)])


def _grow_ranks(
    ranks: tuple[int, ...], alpha: float, shape: tuple[int, ...]
) -> tuple[int, ...]:
    return tuple(
        min(max(math.ceil(alpha * r), r + 1), n) for r, n in zip(ranks, shape)
    )


def rank_adaptive_hooi(
    x: np.ndarray,
    eps: float,
    init_ranks: Sequence[int],
    options: RankAdaptiveOptions | None = None,
) -> tuple[TuckerTensor, RankAdaptiveStats]:
    """Error-specified Tucker approximation via rank-adaptive HOOI.

    Parameters
    ----------
    x:
        Input dense tensor.
    eps:
        Relative error tolerance (``||X - X^|| <= eps ||X||``).
    init_ranks:
        Starting rank estimate (the paper studies perfect / +25% "over"
        / −25% "under" starts).  Clipped to the tensor dimensions.
    options:
        See :class:`RankAdaptiveOptions`; defaults to RA-HOSI-DT.

    Returns
    -------
    (TuckerTensor, RankAdaptiveStats) — the decomposition satisfies the
    tolerance whenever ``stats.converged`` is true.
    """
    options = options or RankAdaptiveOptions()
    if eps <= 0 or eps >= 1:
        raise ConfigError("eps must lie in (0, 1)")
    ranks = check_ranks(x.shape, init_ranks, allow_exceed=True)
    rng = np.random.default_rng(options.seed)

    stats = RankAdaptiveStats(x_norm=tensor_norm(x))
    x_norm_sq = stats.x_norm**2
    target_sq = (1.0 - eps * eps) * x_norm_sq

    factors = [
        random_orthonormal(n, r, seed=rng, dtype=x.dtype)
        for n, r in zip(x.shape, ranks)
    ]
    core: np.ndarray | None = None
    result: TuckerTensor | None = None

    for it in range(1, options.max_iters + 1):
        t0 = time.perf_counter()
        if options.use_dimension_tree:
            engine = SequentialTreeEngine(
                factors,
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
                timings=stats.phase_seconds,
            )
            hooi_iteration_dt(x, engine)
            factors, core = engine.factors, engine.core
        else:
            core = hooi_iteration_direct(
                x,
                factors,
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
                timings=stats.phase_seconds,
            )
        assert core is not None

        core_sq = tensor_norm(core) ** 2
        err = math.sqrt(max(x_norm_sq - core_sq, 0.0)) / max(
            stats.x_norm, 1e-300
        )
        satisfied = core_sq >= target_sq - 1e-12 * max(x_norm_sq, 1.0)
        record = IterationRecord(
            iteration=it,
            ranks_used=ranks,
            error=err,
            satisfied=satisfied,
            storage_size=TuckerTensor(
                core=core, factors=factors
            ).storage_size(),
            seconds=time.perf_counter() - t0,
        )

        if satisfied:
            t0 = time.perf_counter()
            solver = (
                solve_rank_truncation
                if options.truncation == "exhaustive"
                else greedy_rank_truncation
            )
            new_ranks = solver(core, target_sq, x.shape)
            stats.phase_seconds["core_analysis"] = (
                stats.phase_seconds.get("core_analysis", 0.0)
                + time.perf_counter()
                - t0
            )
            assert new_ranks is not None  # satisfied implies feasible
            energies = leading_subtensor_energies(core)
            kept_sq = float(energies[tuple(r - 1 for r in new_ranks)])
            trunc = TuckerTensor(core=core, factors=factors).truncate(
                new_ranks
            )
            record.truncated_ranks = new_ranks
            record.truncated_error = math.sqrt(
                max(x_norm_sq - kept_sq, 0.0)
            ) / max(stats.x_norm, 1e-300)
            record.truncated_storage = trunc.storage_size()
            stats.history.append(record)

            stats.converged = True
            if stats.first_satisfied is None:
                stats.first_satisfied = it
            result = trunc
            core, factors, ranks = trunc.core, trunc.factors, trunc.ranks
            if options.stop_at_threshold:
                break
        else:
            stats.history.append(record)
            if it < options.max_iters:
                # Grow only when another iteration will actually run, so
                # the returned factors always match the returned core.
                new_ranks = _grow_ranks(ranks, options.alpha, x.shape)
                factors = [
                    expand_factor(u, r, rng)
                    for u, r in zip(factors, new_ranks)
                ]
                ranks = new_ranks

    if result is None:
        # Budget never met within max_iters; return the last iterate.
        assert core is not None
        result = TuckerTensor(core=core, factors=list(factors))
    return result, stats
