"""Cheap initial-rank estimation for rank-adaptive HOOI.

Alg. 3 needs a starting rank estimate; the paper observes that "slight
overestimates of the final ranks yield sufficiently accurate solutions
often in the first iteration" but leaves the estimate to the user
(their studies seed it from STHOSVD's output).  This module provides a
practical estimator: per mode, sketch the unfolding's spectrum from a
small Gaussian sample of its *columns* and read the eps-rank off the
sampled singular values, at a fraction of a full STHOSVD's cost.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import ConfigError
from repro.linalg.evd import rank_from_spectrum
from repro.tensor.dense import tensor_norm, unfold

__all__ = ["estimate_ranks"]


def estimate_ranks(
    x: np.ndarray,
    eps: float,
    *,
    sample_columns: int = 256,
    margin: float = 1.25,
    seed: int | np.random.Generator | None = 0,
) -> tuple[int, ...]:
    """Estimate per-mode eps-ranks from sampled unfolding spectra.

    Parameters
    ----------
    x:
        Input tensor.
    eps:
        Target relative error of the eventual decomposition.
    sample_columns:
        Columns sampled per unfolding (capped at the unfolding width).
        The sampled Gram is rescaled by ``n_cols / sample`` so its
        spectrum estimates the full one.
    margin:
        Multiplicative safety factor on the estimated ranks (the paper
        favours slight overestimates — they converge in one iteration).
    seed:
        RNG seed or generator.

    Returns
    -------
    Per-mode rank estimates, clipped to the tensor dimensions.
    """
    if not 0 < eps < 1:
        raise ConfigError("eps must lie in (0, 1)")
    if sample_columns < 1:
        raise ConfigError("sample_columns must be positive")
    if margin < 1.0:
        raise ConfigError("margin must be at least 1")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    d = x.ndim
    norm_sq = tensor_norm(x) ** 2
    budget_sq = eps * eps * norm_sq / d

    ranks = []
    for mode in range(d):
        mat = unfold(x, mode)
        n_cols = mat.shape[1]
        m = min(sample_columns, n_cols)
        cols = rng.choice(n_cols, size=m, replace=False)
        sample = mat[:, cols]
        # Rescale so the sampled energy estimates the full energy.
        gram = (sample @ sample.T) * (n_cols / m)
        vals = np.linalg.eigvalsh(gram)[::-1]
        vals = np.maximum(vals, 0.0)
        r = rank_from_spectrum(vals, budget_sq)
        ranks.append(
            min(max(int(math.ceil(margin * r)), 1), x.shape[mode])
        )
    return tuple(ranks)
