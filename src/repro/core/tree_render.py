"""ASCII rendering of dimension trees (paper Fig. 1).

The paper's Fig. 1 illustrates the multi-TTM memoization tree for an
order-6 tensor: each node is the set of modes in which multiplication
has *not* been performed; each edge notch is a TTM in the labelled
mode; factors are updated at the leaves; the core at the last leaf.
:func:`render_tree` regenerates that picture textually for any order
and split rule.
"""

from __future__ import annotations

from repro.core.dimension_tree import split_modes

__all__ = ["render_tree"]


def _label(modes: tuple[int, ...]) -> str:
    return "{" + ",".join(str(m + 1) for m in sorted(modes)) + "}"


def _render(
    modes: tuple[int, ...],
    prefix: str,
    rule: str,
    lines: list[str],
    edge: str,
) -> None:
    lines.append(f"{prefix}{edge}{_label(modes)}")
    if len(modes) == 1:
        mode = modes[0] + 1
        lines[-1] += f"  <- update U{mode}"
        return
    mu, eta = split_modes(modes, rule)
    child_prefix = prefix + ("    " if not edge else "    ")
    # Right branch first (visited first): contract mu, recurse on eta.
    ttms = ",".join(str(m + 1) for m in mu)
    _render(
        tuple(eta), child_prefix, rule, lines, f"|-[TTM {ttms}]-> "
    )
    ttms = ",".join(str(m + 1) for m in eta)
    _render(
        tuple(sorted(mu)), child_prefix, rule, lines, f"`-[TTM {ttms}]-> "
    )


def render_tree(d: int, rule: str = "half") -> str:
    """ASCII dimension tree for a ``d``-way tensor (1-based modes,
    matching the paper's figure convention)."""
    if d < 2:
        raise ValueError("a dimension tree needs at least 2 modes")
    lines: list[str] = []
    _render(tuple(range(d)), "", rule, lines, "")
    lines.append(
        "(leaves are visited top to bottom, one factor each; the core "
        f"is formed at the final, mode-{d} leaf)"
    )
    return "\n".join(lines)
