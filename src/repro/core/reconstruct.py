"""Chunked decompression of Tucker tensors.

For a compressed tensor whose full reconstruction exceeds RAM, the
Tucker format still supports streaming: any slab along a chosen mode is
reconstructed from the core and row-sliced factors.  These helpers
iterate slabs, fill preallocated (or memory-mapped) outputs, and verify
approximations against on-disk references without a full materialize.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.tucker import TuckerTensor

__all__ = ["iter_slabs", "reconstruct_into", "streamed_relative_error"]


def iter_slabs(
    tucker: TuckerTensor, mode: int, slab: int
) -> Iterator[tuple[slice, np.ndarray]]:
    """Yield ``(slice, reconstructed slab)`` pairs along ``mode``.

    Peak extra memory is one slab, not the full tensor.
    """
    if slab < 1:
        raise ValueError("slab thickness must be positive")
    if not 0 <= mode < tucker.ndim:
        raise ValueError(f"mode {mode} out of range")
    n = tucker.shape[mode]
    region = [slice(None)] * tucker.ndim
    for start in range(0, n, slab):
        sl = slice(start, min(start + slab, n))
        region[mode] = sl
        yield sl, tucker.extract_subtensor(tuple(region))


def reconstruct_into(
    tucker: TuckerTensor,
    out: np.ndarray,
    *,
    mode: int = 0,
    slab: int = 64,
) -> np.ndarray:
    """Fill ``out`` (shape must match) slab by slab; returns ``out``.

    ``out`` may be a ``numpy.memmap``, enabling larger-than-RAM
    decompression to disk.
    """
    if tuple(out.shape) != tucker.shape:
        raise ValueError(
            f"output shape {out.shape} != tensor shape {tucker.shape}"
        )
    index = [slice(None)] * tucker.ndim
    for sl, block in iter_slabs(tucker, mode, slab):
        index[mode] = sl
        out[tuple(index)] = block
    return out


def streamed_relative_error(
    tucker: TuckerTensor,
    reference: np.ndarray,
    *,
    mode: int = 0,
    slab: int = 64,
) -> float:
    """``||ref - X^|| / ||ref||`` computed one slab at a time."""
    if tuple(reference.shape) != tucker.shape:
        raise ValueError("reference shape mismatch")
    num_sq, den_sq = 0.0, 0.0
    index = [slice(None)] * tucker.ndim
    for sl, block in iter_slabs(tucker, mode, slab):
        index[mode] = sl
        ref_block = reference[tuple(index)]
        num_sq += float(np.sum((ref_block - block) ** 2))
        den_sq += float(np.sum(np.square(ref_block)))
    if den_sq == 0.0:
        return 0.0 if num_sq == 0.0 else float("inf")
    return float(np.sqrt(num_sq / den_sq))
