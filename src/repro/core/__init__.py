"""The paper's primary contribution: Tucker approximation algorithms.

Contents map to the paper's algorithms:

* :mod:`repro.core.sthosvd` — Alg. 1 (STHOSVD, the baseline).
* :mod:`repro.core.hooi` — Alg. 2 (HOOI) and its optimized variants
  (HOOI-DT, HOSI, HOSI-DT) via :class:`repro.core.hooi.HOOIOptions`.
* :mod:`repro.core.dimension_tree` — Alg. 4 (dimension-tree memoized
  iteration, §3.3).
* :mod:`repro.core.core_analysis` — the eq. (3) leading-subtensor
  optimizer (§3.2).
* :mod:`repro.core.rank_adaptive` — Alg. 3 (RA-HOSI-DT).
"""

from repro.core.core_analysis import (
    greedy_rank_truncation,
    leading_subtensor_energies,
    solve_rank_truncation,
)
from repro.core.dimension_tree import (
    SPLIT_RULES,
    contraction_schedule,
    hooi_iteration_dt,
    leaf_order,
    split_modes,
    tree_nodes,
)
from repro.core.convergence import (
    max_factor_movement,
    principal_angles,
    subspace_distance,
)
from repro.core.modewise_adaptive import (
    ModewiseOptions,
    ModewiseStats,
    modewise_adaptive_hooi,
)
from repro.core.rank_estimate import estimate_ranks
from repro.core.reconstruct import (
    iter_slabs,
    reconstruct_into,
    streamed_relative_error,
)
from repro.core.tree_render import render_tree
from repro.core.errors import ConfigError, ConvergenceError, ReproError
from repro.core.hooi import (
    HOOIOptions,
    HOOIStats,
    VARIANTS,
    hooi,
    variant_options,
)
from repro.core.hosvd import hosvd
from repro.core.rank_adaptive import (
    RankAdaptiveOptions,
    RankAdaptiveStats,
    rank_adaptive_hooi,
)
from repro.core.sthosvd import STHOSVDStats, auto_mode_order, sthosvd
from repro.core.tucker import TuckerTensor

__all__ = [
    "ConfigError",
    "ConvergenceError",
    "HOOIOptions",
    "HOOIStats",
    "ModewiseOptions",
    "ModewiseStats",
    "RankAdaptiveOptions",
    "RankAdaptiveStats",
    "ReproError",
    "SPLIT_RULES",
    "STHOSVDStats",
    "TuckerTensor",
    "VARIANTS",
    "modewise_adaptive_hooi",
    "auto_mode_order",
    "contraction_schedule",
    "estimate_ranks",
    "greedy_rank_truncation",
    "hooi",
    "iter_slabs",
    "max_factor_movement",
    "principal_angles",
    "reconstruct_into",
    "render_tree",
    "streamed_relative_error",
    "subspace_distance",
    "hooi_iteration_dt",
    "hosvd",
    "leading_subtensor_energies",
    "leaf_order",
    "rank_adaptive_hooi",
    "solve_rank_truncation",
    "split_modes",
    "sthosvd",
    "tree_nodes",
    "variant_options",
]
