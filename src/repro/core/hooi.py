"""Higher Order Orthogonal Iteration and its optimized variants.

The paper studies four rank-specified variants, selected here through
:class:`HOOIOptions` (artifact parameter-file flags in parentheses):

=========  ==========================  ==================
Variant    TTM strategy                LLSV kernel
=========  ==========================  ==================
HOOI       direct (DT=false)           Gram+EVD (SVD=0)
HOOI-DT    dimension tree (DT=true)    Gram+EVD (SVD=0)
HOSI       direct (DT=false)           subspace it. (SVD=2)
HOSI-DT    dimension tree (DT=true)    subspace it. (SVD=2)
=========  ==========================  ==================
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dimension_tree import (
    SequentialTreeEngine,
    hooi_iteration_direct,
    hooi_iteration_dt,
)
from repro.core.errors import ConfigError
from repro.core.tucker import TuckerTensor
from repro.linalg.llsv import LLSVMethod
from repro.tensor.dense import tensor_norm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks

__all__ = ["HOOIOptions", "HOOIStats", "VARIANTS", "hooi", "variant_options"]


@dataclass(frozen=True)
class HOOIOptions:
    """Knobs of the HOOI family.

    Attributes
    ----------
    use_dimension_tree:
        Memoize multi-TTMs through the dimension tree (§3.3).
    llsv_method:
        ``GRAM_EVD`` or ``SUBSPACE`` (§3.4).  Other kernels are rejected
        because HOOI's inner update is rank-specified.
    n_subspace_iters:
        Subspace-iteration sweeps per factor update (paper uses 1).
    max_iters:
        Number of HOOI iterations (paper's synthetic study uses 2).
    tol:
        Optional early stop: halt when the relative-error improvement
        between iterations drops below ``tol``.
    tol_subspace:
        Optional early stop on factor movement: halt when the largest
        per-mode subspace distance (normalized largest principal angle,
        see :func:`repro.core.convergence.max_factor_movement`) between
        consecutive iterations drops below this value.  Useful when the
        error signal is too flat to discriminate (near-exact ranks).
    init:
        ``"random"`` (the paper's choice), ``"hosvd"``, or an explicit
        list of initial factor matrices.
    seed:
        RNG seed for random initialization.
    """

    use_dimension_tree: bool = True
    llsv_method: LLSVMethod = LLSVMethod.SUBSPACE
    n_subspace_iters: int = 1
    max_iters: int = 2
    tol: float | None = None
    tol_subspace: float | None = None
    init: str | Sequence[np.ndarray] = "random"
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.llsv_method not in (LLSVMethod.GRAM_EVD, LLSVMethod.SUBSPACE):
            raise ConfigError(
                "HOOI supports GRAM_EVD or SUBSPACE LLSV kernels, got "
                f"{self.llsv_method}"
            )
        if self.max_iters < 1:
            raise ConfigError("max_iters must be at least 1")
        if self.n_subspace_iters < 1:
            raise ConfigError("n_subspace_iters must be at least 1")


#: Named variants matching the paper's legend.
VARIANTS: dict[str, dict[str, object]] = {
    "hooi": {"use_dimension_tree": False, "llsv_method": LLSVMethod.GRAM_EVD},
    "hooi-dt": {"use_dimension_tree": True, "llsv_method": LLSVMethod.GRAM_EVD},
    "hosi": {"use_dimension_tree": False, "llsv_method": LLSVMethod.SUBSPACE},
    "hosi-dt": {"use_dimension_tree": True, "llsv_method": LLSVMethod.SUBSPACE},
}


def variant_options(name: str, **overrides: object) -> HOOIOptions:
    """Build :class:`HOOIOptions` for a named paper variant."""
    key = name.lower()
    if key not in VARIANTS:
        raise ConfigError(
            f"unknown HOOI variant {name!r}; choose from {sorted(VARIANTS)}"
        )
    base = HOOIOptions(**VARIANTS[key])  # type: ignore[arg-type]
    return replace(base, **overrides) if overrides else base


@dataclass
class HOOIStats:
    """Per-run diagnostics for HOOI."""

    iterations: int = 0
    #: relative error after each iteration (via the core-norm identity)
    errors: list[float] = field(default_factory=list)
    x_norm: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    converged: bool = False


def _initial_factors(
    x: np.ndarray,
    ranks: tuple[int, ...],
    options: HOOIOptions,
) -> list[np.ndarray]:
    if isinstance(options.init, str):
        if options.init == "random":
            rng = np.random.default_rng(options.seed)
            return [
                random_orthonormal(n, r, seed=rng, dtype=x.dtype)
                for n, r in zip(x.shape, ranks)
            ]
        if options.init == "hosvd":
            from repro.core.hosvd import hosvd  # local import avoids cycle

            return [u.copy() for u in hosvd(x, ranks=ranks).factors]
        raise ConfigError(f"unknown init scheme {options.init!r}")
    factors = [np.asarray(u) for u in options.init]
    if len(factors) != x.ndim:
        raise ConfigError("one initial factor per mode required")
    for j, (u, n, r) in enumerate(zip(factors, x.shape, ranks)):
        if u.shape != (n, r):
            raise ConfigError(
                f"initial factor {j} has shape {u.shape}, expected ({n}, {r})"
            )
    return factors


def hooi(
    x: np.ndarray,
    ranks: Sequence[int],
    options: HOOIOptions | None = None,
) -> tuple[TuckerTensor, HOOIStats]:
    """Rank-specified HOOI (paper Alg. 2, with §3.3/§3.4 optimizations).

    Parameters
    ----------
    x:
        Input dense tensor.
    ranks:
        Target multilinear ranks.
    options:
        Variant selection and iteration control; defaults to HOSI-DT
        with 2 iterations (the paper's preferred configuration).

    Returns
    -------
    (TuckerTensor, HOOIStats)
    """
    options = options or HOOIOptions()
    ranks = check_ranks(x.shape, ranks)
    factors = _initial_factors(x, ranks, options)

    stats = HOOIStats(x_norm=tensor_norm(x))
    core: np.ndarray | None = None
    prev_err = float("inf")
    prev_factors: list[np.ndarray] | None = None

    for _ in range(options.max_iters):
        if options.tol_subspace is not None:
            prev_factors = [u.copy() for u in factors]
        if options.use_dimension_tree:
            engine = SequentialTreeEngine(
                factors,
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
                timings=stats.phase_seconds,
            )
            hooi_iteration_dt(x, engine)
            factors, core = engine.factors, engine.core
        else:
            core = hooi_iteration_direct(
                x,
                factors,
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
                timings=stats.phase_seconds,
            )
        stats.iterations += 1
        assert core is not None
        gap = max(stats.x_norm**2 - tensor_norm(core) ** 2, 0.0)
        err = float(np.sqrt(gap)) / stats.x_norm if stats.x_norm else 0.0
        stats.errors.append(err)
        if options.tol is not None and prev_err - err <= options.tol:
            stats.converged = True
            break
        if options.tol_subspace is not None and prev_factors is not None:
            from repro.core.convergence import max_factor_movement

            if (
                max_factor_movement(prev_factors, list(factors))
                <= options.tol_subspace
            ):
                stats.converged = True
                break
        prev_err = err

    assert core is not None
    return TuckerTensor(core=core, factors=list(factors)), stats
