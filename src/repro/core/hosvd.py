"""Classical (non-sequentially-truncated) Higher-Order SVD.

Included as a reference baseline: every mode's LLSV is computed against
the *original* tensor, then the core is formed by a single multi-TTM.
More expensive than STHOSVD but convenient for initializing HOOI and
for cross-checking the sequentially truncated variant.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.tucker import TuckerTensor
from repro.linalg.llsv import LLSVMethod, llsv
from repro.tensor.dense import tensor_norm
from repro.tensor.ops import multi_ttm
from repro.tensor.validation import check_ranks

__all__ = ["hosvd"]


def hosvd(
    x: np.ndarray,
    *,
    eps: float | None = None,
    ranks: Sequence[int] | None = None,
    method: LLSVMethod = LLSVMethod.GRAM_EVD,
) -> TuckerTensor:
    """Truncated HOSVD of ``x``.

    Same error-budget convention as :func:`repro.core.sthosvd.sthosvd`:
    with ``eps``, each mode discards at most ``eps^2 ||X||^2 / d``
    energy, guaranteeing relative error at most ``eps``.
    """
    d = x.ndim
    if eps is None and ranks is None:
        raise ConfigError("hosvd needs eps or ranks")
    if ranks is not None:
        ranks = check_ranks(x.shape, ranks)
    threshold_sq = None if eps is None else (eps * tensor_norm(x)) ** 2 / d

    factors: list[np.ndarray] = []
    for mode in range(d):
        res = llsv(
            x,
            mode,
            rank=None if ranks is None else ranks[mode],
            threshold_sq=threshold_sq,
            method=method,
        )
        factors.append(res.factor)
    core = multi_ttm(x, factors, transpose=True)
    return TuckerTensor(core=core, factors=factors)
