"""Exception hierarchy for the library."""

__all__ = ["ReproError", "ConvergenceError", "ConfigError"]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to meet its target within budget."""


class ConfigError(ReproError):
    """Invalid driver/parameter-file configuration."""
