"""Exception hierarchy for the library."""

__all__ = [
    "ReproError",
    "ConvergenceError",
    "ConfigError",
    "CheckpointError",
    "NumericalFaultError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to meet its target within budget."""


class ConfigError(ReproError):
    """Invalid driver/parameter-file configuration."""


class CheckpointError(ReproError):
    """A sweep checkpoint could not be written, read, or validated.

    Raised on integrity-digest mismatches, format/version skew, and
    resume requests whose tensor, grid, or algorithm do not match the
    run that wrote the checkpoint.
    """


class NumericalFaultError(ReproError):
    """A numerical guard rail tripped at a collective or factor boundary.

    Identifies *where* corrupted data was first observed: the global
    ``rank`` that detected it, the algorithm ``phase`` the collective
    was attributed to, the collective ``op`` (when the NaN/Inf screen
    fired), and the tensor ``mode`` (when the factor-orthogonality
    drift check fired).
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int | None = None,
        phase: str = "",
        mode: int | None = None,
        op: str = "",
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.mode = mode
        self.op = op
