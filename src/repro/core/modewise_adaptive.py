"""Mode-wise rank-adaptive HOOI (Xiao & Yang [26] style ablation).

The related-work alternative to Alg. 3 (§2.3): instead of growing *all*
ranks by a factor and truncating cross-mode via core analysis, each
HOOI subiteration re-selects its own mode's rank from the spectrum of
the intermediate unfolding against the per-mode budget
``eps^2 ||X||^2 / d`` — ranks can grow and shrink mode by mode, but the
truncation decision is greedy per mode (no cross-mode trade-off).  The
paper credits RA-HOSI-DT's cross-mode core analysis for its better
compression ratios; the ablation benchmark quantifies that claim.

Requires the Gram+EVD kernel (a spectrum is needed for the per-mode
choice), so there is no subspace-iteration variant of this strategy —
one more reason the paper's approach composes better with the §3.4
optimization.

Limitation (observable in the ablation tests): the mode-``j``
intermediate ``Y`` has only ``prod_{i != j} r_i`` columns, so a mode's
rank can never expand beyond the product of the *other* modes' current
ranks — severe underestimates (e.g. all-ones starting ranks) may never
escape.  Alg. 3's multiplicative all-modes growth does not have this
failure mode, which is an additional robustness argument for the
paper's design.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.tucker import TuckerTensor
from repro.linalg.llsv import LLSVMethod, llsv
from repro.tensor.dense import tensor_norm
from repro.tensor.ops import multi_ttm, ttm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks

__all__ = ["ModewiseOptions", "ModewiseStats", "modewise_adaptive_hooi"]


@dataclass(frozen=True)
class ModewiseOptions:
    """Knobs of the mode-wise adaptive iteration."""

    max_iters: int = 5
    #: per-mode budget slack: mode budgets are eps^2 ||X||^2 * slack / d
    slack: float = 1.0
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.max_iters < 1:
            raise ConfigError("max_iters must be at least 1")
        if self.slack <= 0:
            raise ConfigError("slack must be positive")


@dataclass
class ModewiseStats:
    """Diagnostics: per-iteration rank trajectories and errors."""

    x_norm: float = 0.0
    rank_history: list[tuple[int, ...]] = field(default_factory=list)
    errors: list[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False


def modewise_adaptive_hooi(
    x: np.ndarray,
    eps: float,
    init_ranks: Sequence[int],
    options: ModewiseOptions | None = None,
) -> tuple[TuckerTensor, ModewiseStats]:
    """Error-specified Tucker approximation with per-mode rank choice.

    Each subiteration computes the full spectrum of the all-but-one
    intermediate's unfolding and keeps the smallest rank whose
    discarded tail fits the per-mode budget — expansion *and*
    contraction happen mode by mode, every subiteration.

    Returns the decomposition and stats; ``stats.converged`` reports
    whether the overall error met ``eps`` within ``max_iters``.
    """
    options = options or ModewiseOptions()
    if eps <= 0 or eps >= 1:
        raise ConfigError("eps must lie in (0, 1)")
    ranks = list(check_ranks(x.shape, init_ranks, allow_exceed=True))
    d = x.ndim
    rng = np.random.default_rng(options.seed)

    stats = ModewiseStats(x_norm=tensor_norm(x))
    x_norm_sq = stats.x_norm**2
    budget_sq = eps * eps * x_norm_sq * options.slack / d

    factors: list[np.ndarray] = [
        random_orthonormal(n, r, seed=rng, dtype=x.dtype)
        for n, r in zip(x.shape, ranks)
    ]
    core: np.ndarray | None = None

    for _ in range(options.max_iters):
        for j in range(d):
            y = multi_ttm(x, factors, transpose=True, skip=j)
            res = llsv(
                y, j, threshold_sq=budget_sq, method=LLSVMethod.GRAM_EVD
            )
            factors[j] = res.factor
            ranks[j] = res.rank
        core = ttm(y, factors[d - 1], d - 1, transpose=True)
        stats.iterations += 1
        stats.rank_history.append(tuple(ranks))
        err = math.sqrt(
            max(x_norm_sq - tensor_norm(core) ** 2, 0.0)
        ) / max(stats.x_norm, 1e-300)
        stats.errors.append(err)
        if err <= eps:
            stats.converged = True
            # Stop once the error budget holds and the ranks have
            # stabilized (no further mode shrank this iteration).
            if (
                len(stats.rank_history) >= 2
                and stats.rank_history[-1] == stats.rank_history[-2]
            ):
                break

    assert core is not None
    return TuckerTensor(core=core, factors=factors), stats
