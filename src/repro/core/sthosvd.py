"""Sequentially Truncated Higher-Order SVD (paper Alg. 1).

The state-of-the-art baseline: unfold each mode in turn, compute its
leading left singular vectors, and immediately truncate that mode, so
later modes operate on a shrinking tensor.  Supports both formulations:

* error-specified — per-mode discarded energy at most
  ``eps^2 ||X||^2 / d`` guarantees ``||X - X^|| <= eps ||X||``;
* rank-specified — take exactly ``r_j`` vectors per mode.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.tucker import TuckerTensor
from repro.linalg.llsv import LLSVMethod, llsv
from repro.tensor.dense import tensor_norm
from repro.tensor.ops import ttm
from repro.tensor.validation import check_ranks

__all__ = ["sthosvd", "STHOSVDStats", "auto_mode_order"]


def auto_mode_order(
    shape: Sequence[int], ranks: Sequence[int] | None = None
) -> tuple[int, ...]:
    """Gram-cost-optimal mode processing order.

    Under the Gram-dominated cost model, processing mode ``j`` on the
    current working tensor of ``S`` entries costs ``n_j * S`` flops and
    shrinks ``S`` by ``r_j / n_j``.  An adjacent-exchange argument
    shows the total is minimized by sorting modes by the key
    ``n_j^2 / (n_j - r_j)`` in *ascending* order — intuitively, cheap
    small-extent Grams go first and expensive large modes are delayed
    until earlier truncations have shrunk the tensor.  With no rank
    estimates the key degenerates to ``n_j`` (smallest extent first).
    Modes with ``r_j = n_j`` (no truncation) sort last.
    """
    shape = tuple(int(n) for n in shape)
    if ranks is None:
        keys = [(float(n), j) for j, n in enumerate(shape)]
    else:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != len(shape):
            raise ValueError("shape/ranks order mismatch")
        keys = [
            (
                float("inf") if r >= n else n * n / (n - r),
                j,
            )
            for j, (n, r) in enumerate(zip(shape, ranks))
        ]
    return tuple(j for _, j in sorted(keys))


@dataclass
class STHOSVDStats:
    """Per-run diagnostics for STHOSVD."""

    ranks: tuple[int, ...] = ()
    mode_order: tuple[int, ...] = ()
    x_norm: float = 0.0
    #: squared singular values of each processed unfolding, keyed by mode
    spectra: dict[int, np.ndarray] = field(default_factory=dict)
    #: wall seconds per phase: "gram_evd" (LLSV) and "ttm"
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def add_time(self, phase: str, seconds: float) -> None:
        """Accumulate wall seconds into a named phase."""
        self.phase_seconds[phase] = (
            self.phase_seconds.get(phase, 0.0) + seconds
        )


def sthosvd(
    x: np.ndarray,
    *,
    eps: float | None = None,
    ranks: Sequence[int] | None = None,
    method: LLSVMethod = LLSVMethod.GRAM_EVD,
    mode_order: Sequence[int] | str | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[TuckerTensor, STHOSVDStats]:
    """Compute a Tucker decomposition by sequential truncation.

    Parameters
    ----------
    x:
        Input dense tensor.
    eps:
        Relative error tolerance (error-specified formulation).  At
        least one of ``eps``/``ranks`` is required; when both are given
        ``ranks`` caps the adaptive choice.
    ranks:
        Fixed multilinear ranks (rank-specified formulation).
    method:
        LLSV kernel; must be spectrum-forming (``GRAM_EVD`` or
        ``LQ_SVD``) when ``eps`` is given.
    mode_order:
        Processing order of the modes: a permutation, ``"auto"`` (the
        :func:`auto_mode_order` heuristic), or ``None`` for ``0..d-1``.
    seed:
        RNG seed for the ``RANDOMIZED`` kernel.

    Returns
    -------
    (TuckerTensor, STHOSVDStats)
    """
    d = x.ndim
    if eps is None and ranks is None:
        raise ConfigError("sthosvd needs eps (error-specified) or ranks")
    if eps is not None and eps <= 0:
        raise ConfigError("eps must be positive")
    if ranks is not None:
        ranks = check_ranks(x.shape, ranks)
    if mode_order is None:
        order = tuple(range(d))
    elif isinstance(mode_order, str):
        if mode_order != "auto":
            raise ConfigError(f"unknown mode_order {mode_order!r}")
        order = auto_mode_order(x.shape, ranks)
    else:
        order = tuple(mode_order)
    if sorted(order) != list(range(d)):
        raise ConfigError(f"mode_order {order} is not a permutation of 0..{d-1}")

    stats = STHOSVDStats(mode_order=order, x_norm=tensor_norm(x))
    threshold_sq = (
        None if eps is None else (eps * stats.x_norm) ** 2 / d
    )

    y = x
    factors: list[np.ndarray | None] = [None] * d
    for mode in order:
        t0 = time.perf_counter()
        res = llsv(
            y,
            mode,
            rank=None if ranks is None else ranks[mode],
            threshold_sq=threshold_sq,
            method=method,
            seed=seed,
        )
        stats.add_time("llsv", time.perf_counter() - t0)
        if res.sq_singular_values is not None:
            stats.spectra[mode] = res.sq_singular_values
        factors[mode] = res.factor

        t0 = time.perf_counter()
        y = ttm(y, res.factor, mode, transpose=True)
        stats.add_time("ttm", time.perf_counter() - t0)

    tucker = TuckerTensor(core=y, factors=[u for u in factors if u is not None])
    stats.ranks = tucker.ranks
    return tucker, stats
