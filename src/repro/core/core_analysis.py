"""Core-tensor analysis for rank truncation (paper §3.2, eq. (3)).

Once a HOOI iterate satisfies the error threshold, the ranks are shrunk
by searching over *leading subtensors* of the core: any ``G(1:r)``
together with the leading factor columns is a valid Tucker approximation
whose error is ``||X||^2 - ||G(1:r)||^2``.  The search needs the energy
``||G(1:r)||^2`` of every leading subtensor, obtained in ``O(d r^d)``
flops by a d-dimensional inclusive prefix sum over the squared core
entries; storage cost is evaluated on the same grid and the feasible
minimizer selected exhaustively.

QRCP inside subspace iteration orders factor columns so core energy
concentrates toward low indices, which is what makes the leading-only
heuristic effective (paper §3.2).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "leading_subtensor_energies",
    "storage_cost_grid",
    "solve_rank_truncation",
    "greedy_rank_truncation",
]


def leading_subtensor_energies(core: np.ndarray) -> np.ndarray:
    """d-dimensional inclusive prefix sum of the squared core entries.

    Returns ``E`` with ``E[i_1, ..., i_d] = ||core[:i_1+1, ..., :i_d+1]||^2``
    (so ``E[-1, ..., -1] == ||core||^2``).
    """
    energies = np.square(core.astype(np.float64, copy=False))
    for axis in range(core.ndim):
        energies = np.cumsum(energies, axis=axis)
    return energies


def storage_cost_grid(
    full_shape: Sequence[int], core_shape: Sequence[int]
) -> np.ndarray:
    """Tucker storage cost of every leading truncation.

    ``cost[i_1, ..., i_d] = prod(i_j + 1) + sum(n_j (i_j + 1))`` — the
    objective of eq. (3) evaluated on the whole rank grid at once via
    broadcasting.
    """
    full_shape = tuple(int(n) for n in full_shape)
    core_shape = tuple(int(r) for r in core_shape)
    if len(full_shape) != len(core_shape):
        raise ValueError("shape order mismatch")
    d = len(core_shape)
    ranges = [np.arange(1, r + 1, dtype=np.float64) for r in core_shape]
    cost = np.ones((1,) * d, dtype=np.float64)
    for axis, rng in enumerate(ranges):
        shape = [1] * d
        shape[axis] = len(rng)
        cost = cost * rng.reshape(shape)
    for axis, (n, rng) in enumerate(zip(full_shape, ranges)):
        shape = [1] * d
        shape[axis] = len(rng)
        cost = cost + n * rng.reshape(shape)
    return cost


def solve_rank_truncation(
    core: np.ndarray,
    target_energy_sq: float,
    full_shape: Sequence[int],
) -> tuple[int, ...] | None:
    """Solve eq. (3): smallest-storage leading truncation meeting the budget.

    Parameters
    ----------
    core:
        Current core tensor.
    target_energy_sq:
        Required retained energy, ``(1 - eps^2) ||X||^2``.
    full_shape:
        Dimensions ``n_j`` of the original tensor (for the storage
        objective).

    Returns
    -------
    tuple of ranks, or ``None`` when even the full core retains less
    energy than the target (the caller should grow ranks instead).
    """
    energies = leading_subtensor_energies(core)
    total = float(energies.flat[-1])
    # Guard rounding: the untruncated core must always count as feasible
    # when the caller has already verified the threshold.
    tol = 1e-12 * max(total, 1.0)
    if total < target_energy_sq - tol:
        return None
    feasible = energies >= min(target_energy_sq, total) - tol
    cost = storage_cost_grid(full_shape, core.shape)
    cost = np.where(feasible, cost, np.inf)
    flat = int(np.argmin(cost))
    idx = np.unravel_index(flat, core.shape)
    return tuple(int(i) + 1 for i in idx)


def greedy_rank_truncation(
    core: np.ndarray,
    target_energy_sq: float,
    full_shape: Sequence[int],
) -> tuple[int, ...] | None:
    """Greedy per-mode alternative to the exhaustive eq. (3) search.

    Starting from the full core, repeatedly decrement the rank of the
    mode offering the largest storage saving among still-feasible
    single-mode decrements.  Mimics STHOSVD's greedy mode-by-mode
    behaviour; kept as an ablation to quantify what exhaustive search
    buys (paper §5 credits the cross-mode flexibility for RA-HOSI-DT's
    better compression ratios).
    """
    energies = leading_subtensor_energies(core)
    total = float(energies.flat[-1])
    tol = 1e-12 * max(total, 1.0)
    if total < target_energy_sq - tol:
        return None
    target = min(target_energy_sq, total) - tol
    full_shape = tuple(int(n) for n in full_shape)
    ranks = list(core.shape)

    def storage(rs: Sequence[int]) -> float:
        prod = 1.0
        for r in rs:
            prod *= r
        return prod + sum(n * r for n, r in zip(full_shape, rs))

    while True:
        best_mode, best_saving = -1, 0.0
        for j in range(core.ndim):
            if ranks[j] <= 1:
                continue
            trial = ranks.copy()
            trial[j] -= 1
            if energies[tuple(r - 1 for r in trial)] >= target:
                saving = storage(ranks) - storage(trial)
                if saving > best_saving:
                    best_mode, best_saving = j, saving
        if best_mode < 0:
            return tuple(ranks)
        ranks[best_mode] -= 1
