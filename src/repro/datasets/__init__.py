"""Dataset generators: synthetic tensors and simulation surrogates.

The paper's real datasets (Miranda, HCCI, SP) are multi-terabyte
scientific simulation outputs unavailable offline; per DESIGN.md we
substitute generators that preserve the property driving the results —
smooth multi-dimensional fields with rapidly decaying multilinear
singular spectra — at laptop-scale dimensions.
"""

from repro.datasets.registry import DATASETS, DatasetSpec, load_dataset
from repro.datasets.simulation import (
    hcci_like,
    miranda_like,
    smooth_multilinear_field,
    sp_like,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "hcci_like",
    "load_dataset",
    "miranda_like",
    "smooth_multilinear_field",
    "sp_like",
]
