"""Simulation-surrogate tensor generators.

Scientific simulation fields compress well in Tucker format because
they are smooth in space and evolve coherently through time/variable
modes: the mode-``j`` unfoldings have rapidly decaying singular values.
:func:`smooth_multilinear_field` reproduces exactly that structure with
a controlled spectrum: a sum of separable terms

    X = sum_k  a_k  (f_k^1 o f_k^2 o ... o f_k^d)  +  noise,

where each ``f_k^j`` is a smooth random function on a 1-D grid (random
low-frequency Fourier series with an ``1/m^smoothness`` envelope) and
the amplitudes decay geometrically, ``a_k = decay^k``.  The decay rate
maps an error tolerance to an output rank the same way the real
datasets' spectra do (high compression at eps = 0.1, growing ranks at
eps = 0.01), which is the behaviour the Fig. 4-9 experiments exercise.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import tensor_norm
from repro.tensor.validation import check_shape

__all__ = [
    "smooth_multilinear_field",
    "miranda_like",
    "hcci_like",
    "sp_like",
]


def _smooth_profile(
    n: int,
    rng: np.random.Generator,
    smoothness: float,
    max_freq: int = 12,
) -> np.ndarray:
    """Random smooth 1-D profile: low-frequency Fourier series."""
    t = np.linspace(0.0, 1.0, n)
    out = np.zeros(n)
    n_freq = min(max_freq, max(n // 2, 1))
    coeffs = rng.standard_normal(n_freq)
    phases = rng.uniform(0.0, 2.0 * np.pi, n_freq)
    for m in range(1, n_freq + 1):
        out += (
            coeffs[m - 1]
            / m**smoothness
            * np.sin(np.pi * m * t + phases[m - 1])
        )
    norm = np.linalg.norm(out)
    return out / norm if norm > 0 else out


def smooth_multilinear_field(
    shape: Sequence[int],
    *,
    num_terms: int = 40,
    decay: float = 0.75,
    smoothness: float = 1.5,
    noise: float = 1e-4,
    seed: int | np.random.Generator | None = 0,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Smooth random field with a geometrically decaying multilinear
    spectrum.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    num_terms:
        Number of separable terms (bounds the noiseless multilinear
        rank in every mode).
    decay:
        Geometric amplitude decay per term; smaller = more compressible.
    smoothness:
        Spectral decay of each 1-D profile (larger = smoother fields).
    noise:
        Relative Gaussian noise floor (``||N|| / ||signal||``).
    seed:
        RNG seed or generator.
    dtype:
        Output dtype (the real datasets are float32 or float64).
    """
    shape = check_shape(shape)
    if num_terms < 1:
        raise ValueError("num_terms must be positive")
    if not 0 < decay < 1:
        raise ValueError("decay must lie in (0, 1)")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    out = np.zeros(shape)
    for k in range(num_terms):
        term = np.array(decay**k)
        for n in shape:
            prof = _smooth_profile(n, rng, smoothness)
            term = np.multiply.outer(term, prof)
        out += term
    if noise > 0:
        pert = rng.standard_normal(shape)
        out += noise * tensor_norm(out) / max(tensor_norm(pert), 1e-300) * pert
    return out.astype(dtype, copy=False)


def miranda_like(
    n: int = 96,
    *,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """3-way viscous-fluid-mixing surrogate (paper: Miranda, 3072^3).

    Single precision like the original; cubic spatial field, moderately
    sharp interfaces (lower smoothness), highly compressible at
    eps = 0.1.
    """
    return smooth_multilinear_field(
        (n, n, n),
        num_terms=48,
        decay=0.78,
        smoothness=1.2,
        noise=5e-4,
        seed=seed,
        dtype=np.float32,
    )


def hcci_like(
    shape: Sequence[int] = (64, 64, 9, 48),
    *,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """4-way combustion surrogate (paper: HCCI, 672x672x33x626).

    Two spatial modes, a small species/variable mode, and a time mode;
    double precision like the original.  The small third mode keeps
    per-mode dimension reduction moderate, the regime where TTMs
    dominate and STHOSVD stays competitive (paper §4.2.2).
    """
    return smooth_multilinear_field(
        tuple(shape),
        num_terms=32,
        decay=0.8,
        smoothness=1.4,
        noise=1e-6,
        seed=seed,
        dtype=np.float64,
    )


def sp_like(
    shape: Sequence[int] = (40, 40, 40, 7, 24),
    *,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """5-way planar-flame surrogate (paper: SP, 500^3 x 11 x 400).

    Three spatial modes, a small variable mode, and a time mode; double
    precision like the original.
    """
    return smooth_multilinear_field(
        tuple(shape),
        num_terms=28,
        decay=0.8,
        smoothness=1.4,
        noise=1e-6,
        seed=seed,
        dtype=np.float64,
    )
