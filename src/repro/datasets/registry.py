"""Named dataset registry mapping paper datasets to surrogates."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.datasets.simulation import hcci_like, miranda_like, sp_like

__all__ = ["DatasetSpec", "DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata tying a surrogate generator to the paper's dataset."""

    name: str
    paper_shape: tuple[int, ...]
    paper_size: str
    paper_cores: int
    description: str
    factory: Callable[..., np.ndarray]

    def load(self, **kwargs: object) -> np.ndarray:
        """Instantiate the surrogate (kwargs forwarded to the factory)."""
        return self.factory(**kwargs)


DATASETS: dict[str, DatasetSpec] = {
    "miranda": DatasetSpec(
        name="miranda",
        paper_shape=(3072, 3072, 3072),
        paper_size="115 GB (float32)",
        paper_cores=1024,
        description=(
            "3-D density ratios of non-reacting viscous fluid flow "
            "(SDRBench Miranda); surrogate: smooth_multilinear_field"
        ),
        factory=miranda_like,
    ),
    "hcci": DatasetSpec(
        name="hcci",
        paper_shape=(672, 672, 33, 626),
        paper_size="75 GB (float64)",
        paper_cores=128,
        description=(
            "4-D HCCI combustion simulation (space x space x 33 "
            "variables x time); surrogate: smooth_multilinear_field"
        ),
        factory=hcci_like,
    ),
    "sp": DatasetSpec(
        name="sp",
        paper_shape=(500, 500, 500, 11, 400),
        paper_size="4.4 TB (float64)",
        paper_cores=2048,
        description=(
            "5-D statistically stationary planar methane-air flame "
            "(space^3 x 11 variables x time); surrogate: "
            "smooth_multilinear_field"
        ),
        factory=sp_like,
    ),
}


def load_dataset(name: str, **kwargs: object) -> np.ndarray:
    """Instantiate a registered dataset surrogate by name."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[key].load(**kwargs)
