"""Raw binary tensor I/O (TuckerMPI-compatible layout).

TuckerMPI reads dense tensors from raw binary files (the artifact's
``download-setup-miranda.sh`` converts the SDRBench download into a
``Miranda_by_slices`` directory of raw slabs).  These helpers write and
read the same kind of files: flat binary in Fortran (first-mode-fastest)
order, with a small JSON sidecar recording shape/dtype, plus
slab-sliced directories and memory-mapped slab reads so a tensor larger
than RAM can be consumed incrementally.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

__all__ = [
    "save_raw",
    "load_raw",
    "load_raw_slab",
    "save_slices",
    "load_slices",
]

_SIDE = ".meta.json"


def _sidecar(path: Path) -> Path:
    return path.with_name(path.name + _SIDE)


def save_raw(x: np.ndarray, path: str | Path) -> None:
    """Write a tensor as flat Fortran-order binary plus a JSON sidecar."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.asfortranarray(x).ravel(order="F").tofile(path)
    _sidecar(path).write_text(
        json.dumps(
            {
                "shape": list(x.shape),
                "dtype": np.dtype(x.dtype).str,
                "order": "F",
            }
        )
    )


def _read_meta(path: Path) -> tuple[tuple[int, ...], np.dtype]:
    meta_path = _sidecar(path)
    if not meta_path.exists():
        raise FileNotFoundError(
            f"missing sidecar {meta_path.name}; raw files need shape/dtype "
            "metadata"
        )
    meta = json.loads(meta_path.read_text())
    return tuple(int(s) for s in meta["shape"]), np.dtype(meta["dtype"])


def load_raw(path: str | Path) -> np.ndarray:
    """Read a tensor written by :func:`save_raw`."""
    path = Path(path)
    shape, dtype = _read_meta(path)
    flat = np.fromfile(path, dtype=dtype)
    expected = math.prod(shape)
    if flat.size != expected:
        raise ValueError(
            f"{path.name} holds {flat.size} values, metadata says {expected}"
        )
    return np.reshape(flat, shape, order="F")


def load_raw_slab(
    path: str | Path, start: int, stop: int
) -> np.ndarray:
    """Memory-map a raw file and read last-mode slab ``[start, stop)``.

    In Fortran order the *last* mode is slowest-varying, so a last-mode
    slab is contiguous on disk — exactly how the artifact's
    ``Miranda_by_slices`` layout enables incremental reads.
    """
    path = Path(path)
    shape, dtype = _read_meta(path)
    if not 0 <= start <= stop <= shape[-1]:
        raise ValueError(
            f"slab [{start}, {stop}) outside mode extent {shape[-1]}"
        )
    mm = np.memmap(path, dtype=dtype, mode="r", shape=shape, order="F")
    return np.array(mm[..., start:stop])


def save_slices(
    x: np.ndarray, directory: str | Path, *, slab: int = 1
) -> list[Path]:
    """Write last-mode slabs as individual raw files (``slice_000`` ...).

    Mirrors the artifact's per-slice Miranda layout.  Returns the paths
    written in order.
    """
    if slab < 1:
        raise ValueError("slab thickness must be positive")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    n = x.shape[-1]
    for i, start in enumerate(range(0, n, slab)):
        p = directory / f"slice_{i:04d}.raw"
        save_raw(x[..., start : min(start + slab, n)], p)
        paths.append(p)
    return paths


def load_slices(directory: str | Path) -> np.ndarray:
    """Reassemble a tensor from a :func:`save_slices` directory."""
    directory = Path(directory)
    paths = sorted(directory.glob("slice_*.raw"))
    if not paths:
        raise FileNotFoundError(f"no slice_*.raw files in {directory}")
    slabs = [load_raw(p) for p in paths]
    return np.concatenate(slabs, axis=-1)
