"""NumPy reshape-GEMM-reshape kernel bodies, plus the references.

The three TTM cases (see the package docstring) share one invariant:
the input tensor is C-contiguous, so every unfolding used here is a
zero-copy ``reshape`` — the only data movement is the GEMM itself, and
the output of every case is C-contiguous, so chained TTMs never
re-pack.

``ttm_reference``/``gram_reference`` are the historical
tensordot/Fortran-unfold implementations, kept verbatim as the
independent oracle for the parity fuzzers and the baseline for
``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = [
    "gram_apply",
    "gram_reference",
    "ttm_apply",
    "ttm_reference",
]


def _prod(extents: Iterable[int]) -> int:
    out = 1
    for extent in extents:
        out *= int(extent)
    return out


def ttm_apply(x: np.ndarray, op: np.ndarray, mode: int) -> np.ndarray:
    """Apply the oriented ``(m, k)`` operand ``op`` along ``mode``.

    ``x`` must be C-contiguous with ``x.shape[mode] == k``; ``op`` may
    be any strided view (BLAS consumes transposed operands natively).
    Extents are computed explicitly so zero-extent modes (empty rank
    slabs, ``m == 0`` truncations) reshape unambiguously.
    """
    shape = x.shape
    d = x.ndim
    m, k = op.shape
    if mode == 0:
        rest = _prod(shape[1:])
        out = op @ x.reshape(k, rest)
        return out.reshape((m,) + shape[1:])
    if mode == d - 1:
        lead = _prod(shape[:-1])
        out = x.reshape(lead, k) @ op.T
        return out.reshape(shape[:-1] + (m,))
    left = _prod(shape[:mode])
    right = _prod(shape[mode + 1:])
    # One batched GEMM over the `left` interior slabs: matmul broadcasts
    # op against the zero-copy (left, k, right) view and writes a fresh
    # C-contiguous (left, m, right) block.
    out = np.matmul(op, x.reshape(left, k, right))
    return out.reshape(shape[:mode] + (m,) + shape[mode + 1:])


def pack_interior(x: np.ndarray, mode: int) -> np.ndarray:
    """C-order unfolding ``(n_mode, rest)`` of an interior mode.

    The single contiguous copy the interior-mode Gram needs; boundary
    modes never call this.
    """
    shape = x.shape
    n = shape[mode]
    left = _prod(shape[:mode])
    right = _prod(shape[mode + 1:])
    view = x.reshape(left, n, right).transpose(1, 0, 2)
    return view.reshape(n, left * right)


def gram_apply(x: np.ndarray, mode: int) -> np.ndarray:
    """Gram of the mode unfolding of a C-contiguous ``x``.

    Boundary modes are a single GEMM on a zero-copy reshape (the last
    mode contracts the *lead* dimension via ``mat.T @ mat``, so no
    transposed copy is formed); interior modes pay one contiguous pack.
    The result of ``A @ A.T`` is exactly symmetric — both triangles of
    each entry pair are the same dot product in the same accumulation
    order — so no symmetrize pass is needed.
    """
    shape = x.shape
    d = x.ndim
    n = shape[mode]
    if mode == 0:
        mat = x.reshape(n, _prod(shape[1:]))
        return mat @ mat.T
    if mode == d - 1:
        mat = x.reshape(_prod(shape[:-1]), n)
        return mat.T @ mat
    mat = pack_interior(x, mode)
    return mat @ mat.T


def ttm_reference(
    tensor: np.ndarray,
    matrix: np.ndarray,
    mode: int,
    *,
    transpose: bool = False,
) -> np.ndarray:
    """Historical tensordot TTM (pre-kernels ``repro.tensor.ops.ttm``)."""
    op = matrix.T if transpose else matrix
    out = np.tensordot(op, tensor, axes=(1, mode))
    return np.moveaxis(out, 0, mode)


def gram_reference(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Historical Fortran-unfold Gram (pre-kernels ``ops.gram``)."""
    mat = np.reshape(
        np.moveaxis(tensor, mode, 0), (tensor.shape[mode], -1), order="F"
    )
    out = mat @ mat.T
    return (out + out.T) * 0.5
