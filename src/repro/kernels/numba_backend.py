"""Optional numba-compiled kernel bodies (soft dependency).

Boundary-mode TTMs and Grams are already a single BLAS call with no
Python-side data movement, so this backend reuses the NumPy bodies for
them verbatim (keeping the two backends trivially bit-identical there).
What it compiles is the *interior*-mode work, where the NumPy path
leans on ``np.matmul`` broadcasting:

* ``_ttm_interior`` — the per-slab GEMM loop, parallelized over slabs
  with ``prange`` (each slab is an independent ``(m, k) @ (k, right)``
  product on contiguous memory);
* ``_pack_interior`` — the Gram's contiguous unfolding pack,
  parallelized over rows.

The pack writes exactly the matrix :func:`repro.kernels.gemm.
pack_interior` builds, so the numba Gram is structurally bit-identical
to the NumPy Gram; the per-slab TTM GEMMs hit the same BLAS on the same
contiguous slabs and are fuzz-checked bit-identical in CI
(``tests/test_kernels.py``).  Dtype combinations BLAS-compiled numba
cannot take (mixed dtypes, non-floats) fall back to the NumPy body.

When numba is absent ``AVAILABLE`` is ``False`` and the package
frontend never dispatches here (it warns and falls back to NumPy), so
importing this module is always safe.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import gemm

__all__ = ["AVAILABLE", "gram_apply", "ttm_apply"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    AVAILABLE = True
except ImportError:  # pragma: no cover - the in-container default
    AVAILABLE = False

if AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(parallel=True, cache=True)
    def _ttm_interior(
        op: np.ndarray, x3: np.ndarray, out: np.ndarray
    ) -> None:
        for slab in prange(x3.shape[0]):
            out[slab] = np.dot(op, x3[slab])

    @njit(parallel=True, cache=True)
    def _pack_interior(x3: np.ndarray, out: np.ndarray) -> None:
        left, n, right = x3.shape
        for row in prange(n):
            for slab in range(left):
                out[row, slab * right:(slab + 1) * right] = x3[slab, row]


def _jit_dtypes_ok(*arrays: np.ndarray) -> bool:
    dtypes = {a.dtype for a in arrays}
    return len(dtypes) == 1 and dtypes.pop() in (
        np.dtype(np.float32),
        np.dtype(np.float64),
    )


def ttm_apply(x: np.ndarray, op: np.ndarray, mode: int) -> np.ndarray:
    """numba TTM body; same contract as :func:`gemm.ttm_apply`."""
    d = x.ndim
    if (
        not AVAILABLE
        or not 0 < mode < d - 1
        or x.size == 0
        or op.size == 0
        or not _jit_dtypes_ok(x, op)
    ):
        return gemm.ttm_apply(x, op, mode)
    shape = x.shape
    m, k = op.shape
    left = gemm._prod(shape[:mode])
    right = gemm._prod(shape[mode + 1:])
    out = np.empty((left, m, right), dtype=x.dtype)
    _ttm_interior(np.ascontiguousarray(op), x.reshape(left, k, right), out)
    return out.reshape(shape[:mode] + (m,) + shape[mode + 1:])


def gram_apply(x: np.ndarray, mode: int) -> np.ndarray:
    """numba Gram body; same contract as :func:`gemm.gram_apply`."""
    d = x.ndim
    if (
        not AVAILABLE
        or not 0 < mode < d - 1
        or x.size == 0
        or not _jit_dtypes_ok(x)
    ):
        return gemm.gram_apply(x, mode)
    shape = x.shape
    n = shape[mode]
    left = gemm._prod(shape[:mode])
    right = gemm._prod(shape[mode + 1:])
    mat = np.empty((n, left * right), dtype=x.dtype)
    _pack_interior(x.reshape(left, n, right), mat)
    return mat @ mat.T
