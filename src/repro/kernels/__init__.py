"""Native-speed TTM/Gram kernels behind a selectable backend.

The paper's cost model (Tables 1-2) charges the local compute of every
distributed algorithm as GEMM flops, so the local kernels must actually
run at GEMM speed.  The historical implementations in
:mod:`repro.tensor.ops` went through ``np.tensordot`` + ``np.moveaxis``:
correct, but the tensordot packs the tensor operand into a fresh
transposed copy on every call and the ``moveaxis`` hands back a
non-contiguous view that forces yet another copy in the *next* kernel of
the chain.  This package provides reshape-GEMM-reshape paths that
operate on contiguous unfoldings directly:

* mode ``0`` / mode ``d-1`` TTMs are a single GEMM on a zero-copy
  reshape of the (C-contiguous) tensor;
* interior modes batch the ``prod(shape[:mode])`` small per-slab GEMMs
  into one ``np.matmul`` call over a zero-copy 3-D view — no transpose
  copy in, and a C-contiguous result out, so chained TTMs (the
  dimension-tree engine's inner loop) never re-pack;
* the Gram of an unfolding reuses the same boundary-mode zero-copy
  reshapes and needs at most one contiguous pack for interior modes.

Backend contract
----------------
``REPRO_KERNELS`` selects the backend process-wide:

* ``numpy`` (default) — pure NumPy/BLAS, always available.
* ``numba`` — JIT-compiled slab loops (parallel packing and per-slab
  GEMMs).  numba is a *soft* dependency: when it is not importable the
  selection falls back to ``numpy`` with a ``RuntimeWarning``; nothing
  in the package ever hard-requires it.

Unknown values also fall back to ``numpy`` (with a warning) so a typo in
a job script degrades to the portable path instead of crashing a sweep.
:func:`set_backend` / :func:`use_backend` override the environment for
tests and benchmarks.

Bit-compatibility
-----------------
``repro.tensor.ops.ttm``/``gram`` route through this package, so the
sequential, cost-simulated, and real-process execution layers all share
one kernel implementation and remain mutually bit-identical (the
``tests/test_parity_fuzz.py`` invariants).  The NumPy backend is the
definition of the public kernels; the numba backend is fuzz-checked
against it (``tests/test_kernels.py``), and both are fuzz-checked at
tight tolerance against the retained tensordot/unfold reference
implementations (:func:`repro.kernels.gemm.ttm_reference`,
:func:`repro.kernels.gemm.gram_reference`).  On large shapes the GEMM
path is empirically bit-identical to the tensordot path as well, but
only the tight-tolerance equivalence is contractual: BLAS may choose a
different (equally valid) accumulation blocking for the two
formulations on small shapes.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

from repro.kernels import gemm

__all__ = [
    "BACKENDS",
    "backend_name",
    "gram",
    "set_backend",
    "ttm",
    "use_backend",
]

#: Recognized ``REPRO_KERNELS`` values.
BACKENDS = ("numpy", "numba")

_ENV_VAR = "REPRO_KERNELS"

# Resolved lazily on first kernel call so importing repro never warns;
# ``None`` means "not resolved yet".
_active: str | None = None


def _resolve(requested: str | None) -> str:
    """Map a requested backend name to the one that will actually run."""
    name = (requested or os.environ.get(_ENV_VAR, "") or "numpy")
    name = name.strip().lower()
    if name not in BACKENDS:
        warnings.warn(
            f"{_ENV_VAR}={name!r} is not a known kernels backend "
            f"(expected one of {BACKENDS}); using the NumPy kernels",
            RuntimeWarning,
            stacklevel=3,
        )
        return "numpy"
    if name == "numba":
        from repro.kernels import numba_backend

        if not numba_backend.AVAILABLE:
            warnings.warn(
                f"{_ENV_VAR}=numba requested but numba is not importable; "
                "falling back to the NumPy kernels",
                RuntimeWarning,
                stacklevel=3,
            )
            return "numpy"
    return name


def backend_name() -> str:
    """The active backend, resolving ``REPRO_KERNELS`` on first use."""
    global _active
    if _active is None:
        _active = _resolve(None)
    return _active


def set_backend(name: str | None = None) -> str:
    """Select the kernels backend; returns the backend actually active.

    ``None`` re-reads ``REPRO_KERNELS``.  Requesting ``numba`` without
    numba installed warns and activates ``numpy`` (the return value says
    so), mirroring the environment-variable behaviour.
    """
    global _active
    _active = _resolve(name)
    return _active


@contextmanager
def use_backend(name: str | None) -> Iterator[str]:
    """Context manager form of :func:`set_backend` for tests."""
    global _active
    previous = _active
    try:
        yield set_backend(name)
    finally:
        _active = previous


def ttm(
    tensor: np.ndarray,
    matrix: np.ndarray,
    mode: int,
    *,
    transpose: bool = False,
) -> np.ndarray:
    """Reshape-GEMM-reshape tensor-times-matrix along ``mode``.

    Semantics match :func:`repro.tensor.ops.ttm` (which delegates
    here): ``unfold(Y, mode) = op(matrix) @ unfold(tensor, mode)``.
    ``matrix`` may be any strided view — transposed operands are passed
    to BLAS natively instead of being pack-copied, which is what makes
    the contiguous row slice ``u[a:b]`` with ``transpose=True`` the
    preferred spelling for distributed factor slabs.

    The result is always C-contiguous.
    """
    d = tensor.ndim
    if not -d <= mode < d:
        raise ValueError(f"mode {mode} out of range for order {d}")
    mode %= d
    if matrix.ndim != 2:
        raise ValueError("ttm factor must be a matrix")
    op = matrix.T if transpose else matrix
    if op.shape[1] != tensor.shape[mode]:
        raise ValueError(
            f"factor contracts {op.shape[1]} entries but mode {mode} has "
            f"extent {tensor.shape[mode]}"
        )
    x = np.ascontiguousarray(tensor)
    if backend_name() == "numba":
        from repro.kernels import numba_backend

        return numba_backend.ttm_apply(x, op, mode)
    return gemm.ttm_apply(x, op, mode)


def gram(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Gram matrix of the mode-``mode`` unfolding, ``Y_(j) @ Y_(j).T``.

    The Gram is invariant to the column *order* of the unfolding up to
    floating-point summation order, so this kernel is free to enumerate
    columns in C order (zero-copy on the boundary modes) rather than
    the Fortran order of :func:`repro.tensor.dense.unfold`.  All
    execution layers share this kernel, so their Grams stay mutually
    bit-identical; the result is exactly symmetric (``G[i, j]`` and
    ``G[j, i]`` are the same dot product evaluated in the same order).
    """
    d = tensor.ndim
    if not -d <= mode < d:
        raise ValueError(f"mode {mode} out of range for order {d}")
    mode %= d
    x = np.ascontiguousarray(tensor)
    if backend_name() == "numba":
        from repro.kernels import numba_backend

        return numba_backend.gram_apply(x, mode)
    return gemm.gram_apply(x, mode)
