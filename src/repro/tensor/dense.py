"""Mode-wise unfolding/folding and the :class:`DenseTensor` wrapper.

Conventions
-----------
We use the Kolda & Bader mode-``j`` unfolding: the rows of
``unfold(X, j)`` are indexed by mode ``j`` and the columns enumerate the
remaining modes with the *lowest* remaining mode varying fastest
(Fortran order).  Under this convention

``(X x_j U)_(j) = U @ unfold(X, j)``

and the multi-TTM unfolds as
``U_j @ X_(j) @ kron(U_d, ..., U_{j+1}, U_{j-1}, ..., U_1).T``.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.validation import check_mode

__all__ = ["unfold", "unfold_c", "fold", "tensor_norm", "DenseTensor"]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Return the mode-``mode`` unfolding of ``tensor``.

    Parameters
    ----------
    tensor:
        A ``d``-way array.
    mode:
        Mode index in ``[0, d)`` (also accepts negative indices).

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(n_mode, prod(other dims))``.
    """
    mode = check_mode(tensor.ndim, mode)
    return np.reshape(
        np.moveaxis(tensor, mode, 0), (tensor.shape[mode], -1), order="F"
    )


def unfold_c(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Row-major (C-order) mode-``mode`` unfolding.

    Same rows as :func:`unfold` but with the columns enumerating the
    remaining modes with the *highest* remaining mode varying fastest.
    For a C-contiguous tensor this is **zero-copy** when ``mode`` is 0
    (a plain reshape) and a single contiguous pack otherwise — the
    layout the GEMM kernels in :mod:`repro.kernels` operate on.  Use it
    wherever the downstream consumer is column-order-invariant (Gram
    matrices, norms); use :func:`unfold` when the Kolda & Bader column
    convention itself matters (folding back, Kronecker identities).
    """
    mode = check_mode(tensor.ndim, mode)
    x = np.ascontiguousarray(tensor)
    n = x.shape[mode]
    rest = 1
    for i, extent in enumerate(x.shape):
        if i != mode:
            rest *= int(extent)
    if mode == 0:
        return x.reshape(n, rest)
    return np.moveaxis(x, mode, 0).reshape(n, rest)


def fold(matrix: np.ndarray, mode: int, shape: tuple[int, ...]) -> np.ndarray:
    """Invert :func:`unfold`: rebuild a tensor of ``shape`` from its
    mode-``mode`` unfolding.

    Parameters
    ----------
    matrix:
        Unfolded matrix with ``matrix.shape[0] == shape[mode]``.
    mode:
        Mode index the matrix was unfolded along.
    shape:
        Target tensor shape.
    """
    shape = tuple(int(s) for s in shape)
    mode = check_mode(len(shape), mode)
    if matrix.shape[0] != shape[mode]:
        raise ValueError(
            f"unfolding has {matrix.shape[0]} rows but shape[{mode}] is "
            f"{shape[mode]}"
        )
    lead = (shape[mode],) + tuple(s for i, s in enumerate(shape) if i != mode)
    return np.moveaxis(np.reshape(matrix, lead, order="F"), 0, mode)


def tensor_norm(tensor: np.ndarray) -> float:
    """Frobenius-type tensor norm (root of sum of squared entries)."""
    return float(np.linalg.norm(np.ravel(tensor)))


class DenseTensor:
    """Thin wrapper around an ``ndarray`` that caches the tensor norm.

    Mirrors TuckerMPI's local ``Tensor`` object: the norm of the input is
    needed repeatedly by the error-specified algorithms, and this class
    computes it exactly once.
    """

    __slots__ = ("data", "_norm")

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data)
        self._norm: float | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def norm(self) -> float:
        """Tensor norm, computed lazily and cached."""
        if self._norm is None:
            self._norm = tensor_norm(self.data)
        return self._norm

    def unfold(self, mode: int) -> np.ndarray:
        """Mode-``mode`` unfolding of the wrapped array."""
        return unfold(self.data, mode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseTensor(shape={self.shape}, dtype={self.data.dtype})"
