"""Random tensor generators for the synthetic experiments.

The paper's synthetic strong-scaling study (§4.1) generates a
Tucker-format tensor of specified rank and adds a specified level of
noise, then recovers the input with the rank-specified algorithms.
:func:`tucker_plus_noise` is that generator.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import tensor_norm
from repro.tensor.ops import multi_ttm
from repro.tensor.validation import check_ranks, check_shape

__all__ = ["random_orthonormal", "random_tucker", "tucker_plus_noise"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_orthonormal(
    n: int, r: int, *, seed: int | np.random.Generator | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Random ``n x r`` matrix with orthonormal columns (Haar via QR)."""
    if r > n:
        raise ValueError(f"cannot build {r} orthonormal columns in R^{n}")
    rng = _rng(seed)
    g = rng.standard_normal((n, r))
    q, rr = np.linalg.qr(g)
    # Fix the sign ambiguity so results are deterministic across BLAS.
    q = q * np.sign(np.where(np.diag(rr) == 0, 1.0, np.diag(rr)))
    return q.astype(dtype, copy=False)


def random_tucker(
    shape: Sequence[int],
    ranks: Sequence[int],
    *,
    seed: int | np.random.Generator | None = None,
    dtype: np.dtype | type = np.float64,
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Random Tucker triple ``(full_tensor, core, factors)``.

    The core is Gaussian and the factors have orthonormal columns, so
    the full tensor has multilinear rank exactly ``ranks`` (with
    probability one).
    """
    shape = check_shape(shape)
    ranks = check_ranks(shape, ranks)
    rng = _rng(seed)
    core = rng.standard_normal(ranks).astype(dtype, copy=False)
    factors = [
        random_orthonormal(n, r, seed=rng, dtype=dtype)
        for n, r in zip(shape, ranks)
    ]
    full = multi_ttm(core, factors)
    return full, core, factors


def tucker_plus_noise(
    shape: Sequence[int],
    ranks: Sequence[int],
    noise: float = 1e-4,
    *,
    seed: int | np.random.Generator | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Low-multilinear-rank tensor plus relative Gaussian noise.

    ``noise`` is the ratio ``||N|| / ||signal||`` of the added
    perturbation, matching TuckerMPI's ``Noise`` driver parameter.
    """
    if noise < 0:
        raise ValueError("noise level must be nonnegative")
    rng = _rng(seed)
    full, _, _ = random_tucker(shape, ranks, seed=rng, dtype=dtype)
    if noise == 0.0:
        return full
    pert = rng.standard_normal(full.shape).astype(dtype, copy=False)
    scale = noise * tensor_norm(full) / max(tensor_norm(pert), 1e-300)
    return full + scale * pert
