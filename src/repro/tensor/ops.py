"""Tensor-times-matrix kernels and related contractions.

These are the computational kernels whose distributed counterparts
dominate the cost analysis in the paper (Tables 1 and 2): the TTM, the
multi-TTM, the Gram matrix of an unfolding, and the all-but-one-mode
contraction used by subspace iteration (Alg. 5, line 3).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import kernels
from repro.tensor.dense import tensor_norm
from repro.tensor.validation import check_mode

__all__ = [
    "ttm",
    "multi_ttm",
    "gram",
    "contract_all_but_mode",
    "relative_error",
    "ttm_flops",
]


def ttm(
    tensor: np.ndarray,
    matrix: np.ndarray,
    mode: int,
    *,
    transpose: bool = False,
) -> np.ndarray:
    """Tensor-times-matrix product ``tensor x_mode matrix``.

    Computes ``Y`` with ``unfold(Y, mode) = op(matrix) @ unfold(tensor,
    mode)`` where ``op`` is transpose when ``transpose`` is set.  With
    ``transpose=True`` and an ``n_j x r_j`` factor this is the truncation
    step ``Y = X x_j U^T`` used throughout STHOSVD and HOOI.

    Parameters
    ----------
    tensor:
        Input ``d``-way array.
    matrix:
        2-D factor. Its second (first, if ``transpose``) dimension must
        match ``tensor.shape[mode]``.
    mode:
        Mode to contract.
    transpose:
        Multiply by ``matrix.T`` instead of ``matrix``.
    """
    mode = check_mode(tensor.ndim, mode)
    # The reshape-GEMM-reshape body lives in repro.kernels (selectable
    # NumPy/numba backends); it validates the operand shapes.
    return kernels.ttm(tensor, matrix, mode, transpose=transpose)


def multi_ttm(
    tensor: np.ndarray,
    matrices: Sequence[np.ndarray | None],
    *,
    transpose: bool = False,
    skip: int | None = None,
    modes: Sequence[int] | None = None,
) -> np.ndarray:
    """Multi-TTM: contract ``tensor`` with one matrix per listed mode.

    Parameters
    ----------
    tensor:
        Input ``d``-way array.
    matrices:
        When ``modes`` is omitted, a length-``d`` sequence aligned with
        the tensor modes; entries that are ``None`` (or the ``skip``
        mode) are left uncontracted.  When ``modes`` is given, a sequence
        of the same length as ``modes``.
    transpose:
        Apply each factor transposed (the compression direction).
    skip:
        Convenience for the all-but-one multi-TTM of HOOI: skip this
        mode even if a matrix is supplied for it.
    modes:
        Explicit mode list matching ``matrices``.

    Notes
    -----
    The contraction order processes modes so the largest dimension
    reductions happen first, which minimizes intermediate sizes —
    the same greedy ordering TuckerMPI applies.
    """
    if modes is None:
        if len(matrices) != tensor.ndim:
            raise ValueError(
                "without explicit modes, one matrix (or None) per tensor "
                "mode is required"
            )
        pairs = [
            (m, mat)
            for m, mat in enumerate(matrices)
            if mat is not None and m != skip
        ]
    else:
        if len(modes) != len(matrices):
            raise ValueError("modes and matrices must have equal length")
        pairs = [
            (check_mode(tensor.ndim, m), mat)
            for m, mat in zip(modes, matrices)
            if mat is not None and m != skip
        ]
        if len({m for m, _ in pairs}) != len(pairs):
            raise ValueError("duplicate modes in multi_ttm")

    def reduction(item: tuple[int, np.ndarray]) -> float:
        mode, mat = item
        rows = mat.shape[1] if transpose else mat.shape[0]
        return rows / tensor.shape[mode]

    out = tensor
    for mode, mat in sorted(pairs, key=reduction):
        out = ttm(out, mat, mode, transpose=transpose)
    return out


def gram(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Gram matrix of the mode-``mode`` unfolding, ``Y_(j) @ Y_(j).T``.

    This is the symmetric kernel TuckerMPI's default LLSV builds before
    its (sequential) eigendecomposition.  The body lives in
    :mod:`repro.kernels`, whose GEMM formulation is exactly symmetric by
    construction (no symmetrize pass needed) and is shared by every
    execution layer so their Grams stay mutually bit-identical.
    """
    return kernels.gram(tensor, mode)


def contract_all_but_mode(
    a: np.ndarray, b: np.ndarray, mode: int
) -> np.ndarray:
    """Contract two tensors over every mode except ``mode``.

    Returns ``unfold(a, mode) @ unfold(b, mode).T`` — the nonsymmetric
    "Gram-like" kernel of subspace iteration (Alg. 5, line 3, computing
    ``Z = A @ G.T``) — without explicitly forming either unfolding when
    shapes differ only in ``mode``.
    """
    mode = check_mode(a.ndim, mode)
    if a.ndim != b.ndim:
        raise ValueError("operands must have equal order")
    for m in range(a.ndim):
        if m != mode and a.shape[m] != b.shape[m]:
            raise ValueError(
                f"operands disagree in mode {m}: {a.shape[m]} vs {b.shape[m]}"
            )
    axes = [m for m in range(a.ndim) if m != mode]
    return np.tensordot(a, b, axes=(axes, axes))


def relative_error(reference: np.ndarray, approx: np.ndarray) -> float:
    """``||reference - approx|| / ||reference||``."""
    denom = tensor_norm(reference)
    if denom == 0.0:
        return 0.0 if tensor_norm(approx) == 0.0 else float("inf")
    return tensor_norm(reference - approx) / denom


def ttm_flops(
    shape: Sequence[int], matrix_rows: int, mode: int
) -> int:
    """Flop count of a single dense TTM (2 * rows * size ratio).

    A TTM in mode ``j`` of an ``n_1 x ... x n_d`` tensor with an
    ``m x n_j`` operand is a GEMM costing ``2 * m * prod(n)`` flops.
    Used by the cost ledger so simulated and analytic counts agree.
    """
    size = 1
    for s in shape:
        size *= int(s)
    return 2 * int(matrix_rows) * size
