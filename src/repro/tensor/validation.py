"""Argument validation helpers shared across the tensor layer."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["check_mode", "check_ranks", "check_shape"]


def check_mode(ndim: int, mode: int) -> int:
    """Normalize ``mode`` to ``[0, ndim)``, raising on out-of-range."""
    if not isinstance(mode, (int,)):
        mode = int(mode)
    if mode < 0:
        mode += ndim
    if not 0 <= mode < ndim:
        raise ValueError(f"mode {mode} out of range for a {ndim}-way tensor")
    return mode


def check_shape(shape: Sequence[int]) -> tuple[int, ...]:
    """Validate a tensor shape: positive integer extents, at least 1 mode."""
    out = tuple(int(s) for s in shape)
    if len(out) == 0:
        raise ValueError("tensor shape must have at least one mode")
    if any(s <= 0 for s in out):
        raise ValueError(f"tensor dimensions must be positive, got {out}")
    return out


def check_ranks(
    shape: Sequence[int], ranks: Sequence[int], *, allow_exceed: bool = False
) -> tuple[int, ...]:
    """Validate a Tucker rank tuple against a tensor shape.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    ranks:
        Requested multilinear ranks, one per mode.
    allow_exceed:
        When true, ranks larger than the mode dimension are clipped to it
        instead of raising (used by rank adaptation, which multiplies
        ranks by a growth factor).
    """
    shape = check_shape(shape)
    out = tuple(int(r) for r in ranks)
    if len(out) != len(shape):
        raise ValueError(
            f"rank tuple has {len(out)} entries for a {len(shape)}-way tensor"
        )
    if any(r <= 0 for r in out):
        raise ValueError(f"ranks must be positive, got {out}")
    if allow_exceed:
        return tuple(min(r, n) for r, n in zip(out, shape))
    if any(r > n for r, n in zip(out, shape)):
        raise ValueError(f"ranks {out} exceed tensor dimensions {shape}")
    return out
