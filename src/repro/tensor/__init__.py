"""Dense tensor substrate: unfoldings, TTM kernels, norms, generators.

This subpackage is the NumPy stand-in for TuckerMPI's local tensor layer.
All functions operate on plain ``numpy.ndarray`` objects using the Kolda
mode-``j`` unfolding convention (Fortran-ordered remaining modes), which
gives the identity ``(X x_j U)_(j) = U @ unfold(X, j)``.
"""

from repro.tensor.dense import (
    DenseTensor,
    fold,
    tensor_norm,
    unfold,
)
from repro.tensor.ops import (
    contract_all_but_mode,
    gram,
    multi_ttm,
    relative_error,
    ttm,
)
from repro.tensor.random import (
    random_orthonormal,
    random_tucker,
    tucker_plus_noise,
)
from repro.tensor.validation import (
    check_mode,
    check_ranks,
    check_shape,
)

__all__ = [
    "DenseTensor",
    "check_mode",
    "check_ranks",
    "check_shape",
    "contract_all_but_mode",
    "fold",
    "gram",
    "multi_ttm",
    "random_orthonormal",
    "random_tucker",
    "relative_error",
    "tensor_norm",
    "ttm",
    "tucker_plus_noise",
    "unfold",
]
