"""The paper artifact's batch workflow, end to end.

The SC artifact drives its studies with generator scripts (one
parameter file + SLURM script per data point) and collector scripts
(CSV -> figures).  This example runs the same three-step pattern
against the simulator — no queueing system required — for a small
4-way strong-scaling study.

Run:  python examples/artifact_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.artifact import (
    collect_scale_experiments,
    generate_scale_experiments,
    run_scale_experiments,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        exp = generate_scale_experiments(
            Path(tmp) / "4way_160_8",
            shape=(160, 160, 160, 160),
            ranks=(8, 8, 8, 8),
            proc_scale=(1, 16, 256, 4096),
            algorithms=("sthosvd", "hooi-dt", "hosi-dt"),
        )
        n_cfg = len(list((exp / "configs").glob("*.cfg")))
        print(f"step 1: generated {n_cfg} parameter files under {exp.name}/")

        n_run = run_scale_experiments(exp)
        print(f"step 2: ran {n_run} points on the simulated machine")

        print("step 3: collected figure:\n")
        print(collect_scale_experiments(exp))
        print(
            "\n(collected.csv and figure.txt now sit next to the "
            "configs, like the artifact's post-processing outputs)"
        )


if __name__ == "__main__":
    main()
