"""Visualize simulated execution as ASCII timelines.

Runs STHOSVD and HOSI-DT with event tracing enabled and renders one
Gantt lane per phase — the Gram/EVD alternation of STHOSVD and the
tree-shaped TTM bursts of HOSI-DT become visible at a glance.

Run:  python examples/trace_timeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.hooi import variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd
from repro.vmpi.trace import render_timeline


def main() -> None:
    x = SymbolicArray((1024, 1024, 1024), np.float32)

    print("STHOSVD at P=256 (grid 1x16x16):\n")
    _, stats = dist_sthosvd(x, (1, 16, 16), ranks=(16, 16, 16), trace=True)
    print(render_timeline(stats.ledger.events))
    print(f"\nNote the sequential EVD lane: {stats.breakdown.get('evd', 0):.3g}"
          " simulated seconds that no amount of ranks can shrink.\n")

    print("HOSI-DT at P=256 (grid 1x256x1), two iterations:\n")
    _, stats = dist_hooi(
        x,
        (16, 16, 16),
        (1, 256, 1),
        options=variant_options("hosi-dt", max_iters=2),
        trace=True,
    )
    print(render_timeline(stats.ledger.events))
    print(
        "\nNo EVD lane at all — the subspace-iteration QRCP is the only "
        "sequential step, and it is tiny."
    )


if __name__ == "__main__":
    main()
