"""Tour of the dimension-tree memoization (paper §3.3, Fig. 1).

Renders the order-6 tree from the paper's Fig. 1, compares TTM
schedules across tree shapes, and shows the flop savings over the
direct multi-TTMs.

Run:  python examples/dimension_tree_tour.py
"""

from __future__ import annotations

from repro.analysis.costs import hooi_iteration_flops
from repro.analysis.reporting import format_table
from repro.core.dimension_tree import contraction_schedule
from repro.core.tree_render import render_tree


def main() -> None:
    print("Dimension tree for an order-6 tensor (paper Fig. 1):\n")
    print(render_tree(6))

    print("\nTTM counts per HOOI iteration:\n")
    rows = []
    for d in (3, 4, 5, 6, 8):
        rows.append(
            [
                d,
                d * (d - 1),
                len(contraction_schedule(d, "half")),
                len(contraction_schedule(d, "single")),
            ]
        )
    print(
        format_table(
            ["d", "direct (d(d-1))", "balanced tree", "caterpillar tree"],
            rows,
        )
    )

    print("\nLeading-order TTM flops per iteration (n=64, r=4, P=1):\n")
    rows = []
    for d in (3, 4, 6):
        direct = hooi_iteration_flops(64, d, 4, 1, dimension_tree=False)
        tree = hooi_iteration_flops(64, d, 4, 1, dimension_tree=True)
        rows.append(
            [d, direct["ttm"], tree["ttm"], direct["ttm"] / tree["ttm"]]
        )
    print(
        format_table(
            ["d", "direct flops", "tree flops", "factor (= d/2)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
