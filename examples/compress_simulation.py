"""Compress a simulated fluid-flow field and decompress a subregion.

The motivating Tucker use case from the paper's introduction: compress
3-D simulation output, then reconstruct only a spatial region of
interest without ever materializing the full tensor — the factor rows
are sliced instead.

Run:  python examples/compress_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import sthosvd, rank_adaptive_hooi
from repro.analysis.metrics import relative_size
from repro.datasets import miranda_like


def main() -> None:
    # A Miranda-like viscous-mixing field (surrogate for the paper's
    # 3072^3 dataset; see DESIGN.md for the substitution rationale).
    x = miranda_like(96, seed=0).astype(np.float64)
    print(f"field: shape={x.shape}, {x.nbytes / 1e6:.1f} MB")

    for eps in (0.1, 0.05, 0.01):
        tucker, _ = sthosvd(x, eps=eps)
        print(
            f"eps={eps:<5}: ranks={tucker.ranks}, "
            f"relative size={relative_size(x.shape, tucker.ranks):.5f}, "
            f"compression={tucker.compression_ratio():.0f}x"
        )

    # Rank-adaptive HOOI can squeeze the ranks further cross-mode.
    base, _ = sthosvd(x, eps=0.1)
    ra, stats = rank_adaptive_hooi(x, 0.1, base.ranks)
    print(
        f"RA-HOSI-DT at eps=0.1: ranks={ra.ranks} "
        f"(STHOSVD chose {base.ranks}), "
        f"compression={ra.compression_ratio():.0f}x"
    )

    # Decompress only a region of interest (an 8-voxel-thick slab).
    region = (slice(40, 48), slice(0, 96), slice(0, 96))
    slab = ra.extract_subtensor(region)
    # The eps guarantee is in the *global* norm; report the slab error
    # on the same scale for an apples-to-apples number.
    err = np.linalg.norm(slab - x[region]) / np.linalg.norm(x)
    print(
        f"decompressed slab {slab.shape} without full reconstruction; "
        f"slab error (global-norm scale) {err:.3e} <= eps = 0.1"
    )


if __name__ == "__main__":
    main()
