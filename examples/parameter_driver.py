"""Drive the TuckerMPI-style CLI programmatically.

Writes the same parameter files the paper's artifact uses (Appendix B.1)
and runs both drivers, mirroring:

    srun -n 8 ./build/mpi/drivers/bin/sthosvd --parameter-file STHOSVD.cfg
    srun -n 4 ./build/mpi/drivers/bin/hooi    --parameter-file HOOI.cfg

Run:  python examples/parameter_driver.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cli import hooi_main, sthosvd_main

STHOSVD_CFG = """\
Print options = true
Print timings = true
Noise = 0.0001
SV Threshold = 0.0
Perform STHOSVD = true
# 4D grid with 8 processors
Processor grid dims = 1 2 2 2
# decrease Global dims if limited by DRAM
Global dims = 50 50 50 50
Ranks = 10 10 10 10
"""

HOOI_CFG = """\
Print options = true
Print timings = true
Dimension Tree Memoization = true
HOOI Adapt core tensor gather type = false
Noise = 0.0001
HOOI-Adapt Threshold = 0.01
HOOI max iters = 3
SVD Method = 2
# 4D grid with 4 processors
Processor grid dims = 1 2 2 1
Global dims = 50 50 50 50
# True ranks of the tensor
Construction Ranks = 10 10 10 10
# Initial guess of ranks for the core tensor
Decomposition Ranks = 12 12 12 12
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        sth = Path(tmp) / "STHOSVD.cfg"
        sth.write_text(STHOSVD_CFG)
        hooi = Path(tmp) / "HOOI.cfg"
        hooi.write_text(HOOI_CFG)

        print("=" * 60)
        print("repro-sthosvd --parameter-file STHOSVD.cfg")
        print("=" * 60)
        sthosvd_main(["--parameter-file", str(sth)])

        print()
        print("=" * 60)
        print("repro-hooi --parameter-file HOOI.cfg   (RA-HOSI-DT)")
        print("=" * 60)
        hooi_main(["--parameter-file", str(hooi)])


if __name__ == "__main__":
    main()
