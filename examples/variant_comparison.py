"""Compare the four HOOI variants and STHOSVD on one problem.

Shows both the numerics (all variants reach the same error) and the
simulated cost structure (why HOSI-DT wins): per-phase breakdowns on
the virtual machine at 256 cores.

Run:  python examples/variant_comparison.py
"""

from __future__ import annotations

from repro import tucker_plus_noise
from repro.analysis.breakdown import group_breakdown
from repro.analysis.reporting import format_breakdown, format_table
from repro.analysis.scaling import ALGORITHMS, default_grid, run_variant


def main() -> None:
    shape, ranks = (96, 96, 96), (6, 6, 6)
    x = tucker_plus_noise(shape, ranks, noise=1e-4, seed=0)
    p = 256

    rows, labels, downs = [], [], []
    for algo in ALGORITHMS:
        grid = default_grid(p, shape, algo)
        tucker, stats = run_variant(x, algo, grid, ranks=ranks)
        err = tucker.relative_error(x)
        rows.append(
            [
                algo, "x".join(map(str, grid)), err,
                stats.simulated_seconds,
            ]
        )
        labels.append(algo)
        downs.append(group_breakdown(stats.breakdown))

    print(
        format_table(
            ["algorithm", "grid", "rel error", "sim seconds"],
            rows,
            title=f"All algorithms, {shape} rank {ranks}, P={p}",
        )
    )
    print()
    print(
        format_breakdown(
            labels, downs, title="Simulated per-phase breakdown (seconds)"
        )
    )
    print(
        "\nReading: the -DT variants cut TTM time ~d/2; the HOSI "
        "variants replace the sequential EVD with a cheap QRCP."
    )


if __name__ == "__main__":
    main()
