"""Run STHOSVD and HOSI with *real* process parallelism.

Unlike the cost simulator (which models thousands of ranks), this uses
the mini-MPI of ``repro.vmpi.mp_comm``: one OS process per grid cell,
each holding only its block, with every Gram / TTM / subspace-iteration
contraction moving data through genuine inter-process collectives.

Run:  python examples/process_parallel.py
"""

from __future__ import annotations

import time

from repro import sthosvd, tucker_plus_noise
from repro.distributed.mp_hooi import mp_hosi
from repro.distributed.mp_sthosvd import mp_sthosvd


def main() -> None:
    x = tucker_plus_noise((48, 44, 40), (6, 5, 4), noise=1e-3, seed=0)
    grid = (2, 2, 1)
    print(
        f"tensor {x.shape}, grid {'x'.join(map(str, grid))} "
        f"= {2 * 2 * 1} OS processes"
    )

    seq, _ = sthosvd(x, ranks=(6, 5, 4))
    print(f"sequential STHOSVD error: {seq.relative_error(x):.6e}")

    t0 = time.perf_counter()
    par = mp_sthosvd(x, grid, ranks=(6, 5, 4))
    dt = time.perf_counter() - t0
    print(
        f"process-parallel STHOSVD error: {par.relative_error(x):.6e} "
        f"({dt:.2f}s incl. process startup)"
    )
    assert abs(par.relative_error(x) - seq.relative_error(x)) < 1e-10

    t0 = time.perf_counter()
    hosi = mp_hosi(x, (6, 5, 4), grid, max_iters=2, seed=1)
    dt = time.perf_counter() - t0
    print(
        f"process-parallel HOSI error:    {hosi.relative_error(x):.6e} "
        f"({dt:.2f}s incl. process startup)"
    )
    print(
        "\nNote: the mini-MPI demonstrates correctness of the parallel "
        "algorithms with real data movement; performance at scale is "
        "the cost simulator's job (see examples/scaling_study.py)."
    )


if __name__ == "__main__":
    main()
