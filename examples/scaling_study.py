"""Strong-scaling study on the simulated machine (paper Fig. 2).

Runs every algorithm at the paper's full synthetic dimensions — no data
is allocated (symbolic mode); only the cost model executes — and prints
the simulated-seconds scaling series plus best-grid choices.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_series, format_table
from repro.analysis.scaling import strong_scaling


def main() -> None:
    p_values = [2**k for k in range(0, 13, 2)]  # 1 .. 4096
    points = strong_scaling(
        (3750, 3750, 3750), (30, 30, 30), p_values
    )

    algos = sorted({pt.algorithm for pt in points})
    series = {
        a: [
            next(
                pt.seconds
                for pt in points
                if pt.algorithm == a and pt.p == p
            )
            for p in p_values
        ]
        for a in algos
    }
    print(
        format_series(
            "P",
            p_values,
            series,
            title="Simulated strong scaling: 3-way 3750^3, ranks 30^3",
        )
    )

    print()
    print(
        format_table(
            ["algorithm", "P", "best grid", "sim seconds"],
            [
                [pt.algorithm, pt.p, "x".join(map(str, pt.grid)), pt.seconds]
                for pt in points
                if pt.p == p_values[-1]
            ],
            title=f"Best grids at P={p_values[-1]}",
        )
    )

    sth = series["sthosvd"][-1]
    hosi = series["hosi-dt"][-1]
    print(
        f"\nAt P={p_values[-1]}: HOSI-DT is {sth / hosi:.0f}x faster than "
        "STHOSVD (paper Fig. 2 reports 259x on Perlmutter) - the "
        "sequential-EVD bottleneck caps STHOSVD."
    )


if __name__ == "__main__":
    main()
