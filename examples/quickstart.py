"""Quickstart: error-specified Tucker compression with RA-HOSI-DT.

Builds a synthetic low-multilinear-rank tensor, compresses it to a 1%
relative-error budget with the paper's rank-adaptive HOOI (Alg. 3), and
compares against the STHOSVD baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    RankAdaptiveOptions,
    rank_adaptive_hooi,
    sthosvd,
    tucker_plus_noise,
)


def main() -> None:
    # A 60x50x40 tensor that is (5, 4, 6)-multilinear-rank plus noise.
    x = tucker_plus_noise(
        (60, 50, 40), (5, 4, 6), noise=1e-3, seed=0
    )
    eps = 0.01

    # Baseline: error-specified STHOSVD.
    st_tucker, _ = sthosvd(x, eps=eps)
    print(
        f"STHOSVD:    ranks={st_tucker.ranks}, "
        f"error={st_tucker.relative_error(x):.2e}, "
        f"compression={st_tucker.compression_ratio():.1f}x"
    )

    # RA-HOSI-DT from a deliberately wrong starting guess: the rank
    # adaptation grows/truncates to meet the budget automatically.
    ra_tucker, stats = rank_adaptive_hooi(
        x,
        eps,
        init_ranks=(8, 8, 8),
        options=RankAdaptiveOptions(alpha=1.5, max_iters=3),
    )
    print(
        f"RA-HOSI-DT: ranks={ra_tucker.ranks}, "
        f"error={ra_tucker.relative_error(x):.2e}, "
        f"compression={ra_tucker.compression_ratio():.1f}x, "
        f"converged in iteration {stats.first_satisfied}"
    )
    for rec in stats.history:
        trunc = (
            f" -> truncated to {rec.truncated_ranks}"
            if rec.truncated_ranks
            else ""
        )
        print(
            f"  iter {rec.iteration}: ranks {rec.ranks_used}, "
            f"error {rec.error:.3e}{trunc}"
        )

    assert ra_tucker.relative_error(x) <= eps
    print("OK: tolerance met.")


if __name__ == "__main__":
    main()
