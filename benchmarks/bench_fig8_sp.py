"""Figure 8 — SP: error/time/size progression of RA-HOSI-DT.

5-way surrogate at 2048 simulated cores.  Paper §4.2.2: three
iterations typically produce a smaller Tucker approximation but take
over twice as long as stopping at the threshold; perfect/under starts
improve compression over STHOSVD at high compression.
"""

from __future__ import annotations

from _dataset_figs import (
    assert_all_converged,
    progression_table,
)
from _util import save_result


def test_fig8_sp_progression(benchmark, sp_experiment):
    exp, x = sp_experiment
    table = benchmark.pedantic(
        lambda: progression_table(exp, x.shape), rounds=1, iterations=1
    )
    save_result("fig8_sp_progression", table)

    assert_all_converged(exp)
    # Running all 3 iterations costs substantially more than stopping
    # at the threshold when it is hit on iteration 1.
    run = exp.adaptive_for(0.1, "over")
    t_first = run.time_to_threshold()
    t_all = run.stats.simulated_seconds
    assert run.stats.first_satisfied == 1
    assert t_all > 1.5 * t_first
    # ...but compression never degrades across iterations.
    sizes = [
        rec.truncated_storage
        for rec in run.history
        if rec.truncated_storage is not None
    ]
    assert all(b <= a * 1.001 for a, b in zip(sizes, sizes[1:]))
    # Perfect start matches or beats STHOSVD's compression at eps=0.1.
    base = exp.baselines[0.1]
    perfect = exp.adaptive_for(0.1, "perfect")
    assert perfect.final_relative_size(x.shape) <= base.relative_size * 1.1
