"""Grid-choice study — validates the §4 grid methodology on simulated
*time* (not just the Table 2 word counts).

Exhaustively simulates every ordered grid factorization at P = 64 for
the 3-way synthetic problem and checks (a) the paper's qualitative
preferences hold at the optimum, and (b) the cheap `suggested_grids`
heuristic finds a grid within a small factor of the exhaustive best —
the justification for using it in all other experiments.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.analysis.scaling import run_variant
from repro.distributed.arrays import SymbolicArray
from repro.vmpi.grid import candidate_grids, suggested_grids
from repro.vmpi.machine import MachineModel

P = 64
SHAPE, RANKS = (1024, 1024, 1024), (16, 16, 16)
# A network-limited machine (slow interconnect relative to compute)
# makes the grid choice a first-order effect, isolating the paper's
# communication argument; on compute-bound configurations all grids
# are within a few percent and the preference is invisible.
COMM_HEAVY = MachineModel(beta=3.2e-8, alpha=2.0e-5)


def _time(algo: str, grid) -> float:
    x = SymbolicArray(SHAPE, np.float32)
    _, stats = run_variant(x, algo, grid, ranks=RANKS, machine=COMM_HEAVY)
    return stats.simulated_seconds


def test_grid_search(benchmark):
    def run():
        all_grids = candidate_grids(P, 3)
        rows, best = [], {}
        for algo in ("sthosvd", "hosi-dt"):
            times = {g: _time(algo, g) for g in all_grids}
            best_grid = min(times, key=times.get)
            heur = min(
                suggested_grids(P, 3, SHAPE),
                key=lambda g: _time(algo, g),
            )
            rows.append(
                [
                    algo, str(best_grid), times[best_grid],
                    str(heur), _time(algo, heur),
                    str(max(times, key=times.get)),
                    times[max(times, key=times.get)],
                ]
            )
            best[algo] = (best_grid, times[best_grid], _time(algo, heur))
        return rows, best

    rows, best = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "grid_search",
        format_table(
            [
                "algorithm", "best grid", "best s", "heuristic grid",
                "heuristic s", "worst grid", "worst s",
            ],
            rows,
            title=(
                f"Exhaustive grid search at P={P}, 3-way "
                f"{SHAPE[0]}^3, ranks {RANKS[0]}^3"
            ),
        ),
    )
    # Paper §4: STHOSVD's best grids have P_1 = 1, and grids violating
    # the DT preference (splitting modes 1 and d) are measurably worse.
    sth_best = best["sthosvd"][0]
    assert sth_best[0] == 1
    # The paper says P_1 = P_d = 1 grids are "typically the fastest"
    # for DT variants: the best such grid is within 2% of the
    # exhaustive optimum (lower-order middle-mode terms can nudge the
    # true optimum to P_1 = 2), while the worst grid is far off.
    t_pref = _time("hosi-dt", (1, P, 1))
    t_opt = best["hosi-dt"][1]
    assert t_pref <= 1.02 * t_opt
    worst = max(_time("hosi-dt", g) for g in [(P, 1, 1), (1, 1, P)])
    assert worst > 1.5 * t_opt
    # The heuristic is within 1.5x of the exhaustive optimum.
    for algo, (g, t_best, t_heur) in best.items():
        assert t_heur <= 1.5 * t_best, algo
