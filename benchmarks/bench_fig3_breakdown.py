"""Figure 3 — running-time breakdown at small and large scale.

For both synthetic tensors (3-way 3750^3 and 4-way 560^4), regenerates
the per-phase stacked breakdown of every algorithm at P = 1 and at the
panel's largest core count, grouped into the paper's display categories
(TTM / Gram / EVD / Subspace / QRCP).
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.breakdown import group_breakdown
from repro.analysis.reporting import format_breakdown
from repro.analysis.scaling import ALGORITHMS, default_grid, run_variant
from repro.distributed.arrays import SymbolicArray


def _breakdowns(shape, ranks, p):
    labels, downs = [], []
    x = SymbolicArray(shape, np.float32)
    for algo in ALGORITHMS:
        grid = default_grid(p, shape, algo)
        _, stats = run_variant(x, algo, grid, ranks=ranks)
        labels.append(f"{algo}@P={p}")
        downs.append(group_breakdown(stats.breakdown))
    return labels, downs


def test_fig3_3way_breakdown(benchmark):
    def run():
        out = []
        for p in (1, 4096):
            out.append(_breakdowns((3750,) * 3, (30,) * 3, p))
        return out

    (l1, d1), (l2, d2) = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "fig3_3way_breakdown",
        format_breakdown(
            l1 + l2,
            d1 + d2,
            title=(
                "Fig. 3 (top): simulated time breakdown, 3-way 3750^3 "
                "(seconds per phase)"
            ),
        ),
    )
    by = dict(zip(l1 + l2, d1 + d2))
    # At P=4096 the sequential EVD dominates STHOSVD and Gram-HOOI.
    assert by["sthosvd@P=4096"]["EVD"] > 0.5 * sum(
        by["sthosvd@P=4096"].values()
    )
    assert by["hooi-dt@P=4096"]["EVD"] > 0.5 * sum(
        by["hooi-dt@P=4096"].values()
    )
    # HOSI-DT has no EVD at all.
    assert "EVD" not in by["hosi-dt@P=4096"]
    # At P=1 STHOSVD is Gram-dominated, HOOI variants TTM-dominated.
    assert by["sthosvd@P=1"]["Gram"] > by["sthosvd@P=1"]["TTM"]
    assert by["hosi-dt@P=1"]["TTM"] > by["hosi-dt@P=1"]["Subspace"]


def test_fig3_4way_breakdown(benchmark):
    def run():
        out = []
        for p in (1, 4096):
            out.append(_breakdowns((560,) * 4, (10,) * 4, p))
        return out

    (l1, d1), (l2, d2) = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "fig3_4way_breakdown",
        format_breakdown(
            l1 + l2,
            d1 + d2,
            title=(
                "Fig. 3 (bottom): simulated time breakdown, 4-way 560^4 "
                "(seconds per phase)"
            ),
        ),
    )
    by = dict(zip(l1 + l2, d1 + d2))
    # 4-way at P=1: everything is TTM/Gram-dominated; EVD is small for
    # STHOSVD (the paper's explanation of its good 4-way scaling).
    assert by["sthosvd@P=1"].get("EVD", 0.0) < 0.1 * sum(
        by["sthosvd@P=1"].values()
    )
