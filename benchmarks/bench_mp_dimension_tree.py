"""Memoized vs direct HOOI iterations on the real-process layer.

Times one full HOOI iteration (all ``d`` factor updates plus the
core-forming TTM) per variant — the dimension-tree traversal of
:class:`~repro.distributed.mp_hooi.MPTreeEngine` against the direct
all-but-one sweep — inside the *same* ``run_spmd`` worker set, so both
variants see identical processes, transport state, and segment pools.
Per variant: a warm-up iteration, a barrier, then ``reps`` timed
iterations; the reported figure is the slowest rank's per-iteration
time, best of ``TRIALS`` launches.

Two assertions:

* the executed per-iteration TTM counts match the closed forms of
  :func:`repro.analysis.costs.hooi_ttm_count` exactly (always, even in
  smoke mode) — the Table 1 certification;
* for d = 4 the tree beats the direct sweep on wall time (9 vs 13
  TTMs, and every TTM saved is also a reduce-scatter saved).  d = 3
  (6 vs 7 TTMs) is reported but not asserted.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _util import save_result
from repro.analysis.costs import hooi_ttm_count
from repro.analysis.reporting import format_table
from repro.core.dimension_tree import hooi_iteration_dt
from repro.distributed.layout import BlockLayout
from repro.distributed.mp_hooi import MPTreeEngine, _direct_sweep
from repro.tensor.random import random_orthonormal, tucker_plus_noise
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import ProcessComm, run_spmd

#: CI smoke mode: tiny tensors, one trial, no timing assertion (the
#: TTM-count certification still runs).
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

# (d, shape, ranks, grid) — 4 workers each.
CASES = [
    (3, (48, 48, 48), (8, 8, 8), (2, 2, 1)),
    (4, (20, 20, 20, 20), (5, 5, 5, 5), (2, 2, 1, 1)),
]
REPS = 3
TRIALS = 2
if SMOKE:
    CASES = [
        (3, (8, 8, 8), (2, 2, 2), (2, 2, 1)),
        (4, (6, 6, 6, 6), (2, 2, 2, 2), (2, 2, 1, 1)),
    ]
    REPS = 1
    TRIALS = 1


def _bench_program(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
    reps: int,
) -> dict[str, tuple[float, int]]:
    """Time both variants in this worker; returns per-variant
    ``(seconds per iteration, TTMs per iteration)``."""
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    layout = BlockLayout(shape, grid)
    d = len(shape)
    rng = np.random.default_rng(0)
    init = [
        random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
    ]
    state = (blocks[comm.rank], layout, ())

    out: dict[str, tuple[float, int]] = {}
    for variant in ("tree", "direct"):
        factors = [u.copy() for u in init]
        engine = MPTreeEngine(
            comm, coords, factors, ranks, memoize=variant == "tree"
        )

        def iteration() -> None:
            if variant == "tree":
                hooi_iteration_dt(state, engine)
            else:
                _direct_sweep(engine, state, d)

        iteration()  # warm-up: fault in buffers, build segment pools
        comm.barrier()
        before = engine.ttm_count
        t0 = time.perf_counter()
        for _ in range(reps):
            iteration()
        dt = time.perf_counter() - t0
        out[variant] = (
            dt / reps,
            (engine.ttm_count - before) // reps,
        )
    return out


def _run_case(
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
    grid_dims: tuple[int, ...],
) -> dict[str, tuple[float, int]]:
    """Slowest-rank per-iteration seconds, best of TRIALS launches."""
    grid = ProcessorGrid(grid_dims)
    layout = BlockLayout(shape, grid)
    x = tucker_plus_noise(shape, ranks, noise=1e-3, seed=7)
    blocks = [
        np.ascontiguousarray(x[layout.local_slices(coords)])
        for _, coords in grid.iter_ranks()
    ]
    best: dict[str, tuple[float, int]] = {}
    for _ in range(TRIALS):
        outs = run_spmd(
            _bench_program,
            grid.size,
            blocks,
            tuple(grid_dims),
            tuple(shape),
            tuple(ranks),
            REPS,
            timeout=300.0,
        )
        for variant in ("tree", "direct"):
            slowest = max(o[variant][0] for o in outs)
            ttms = outs[0][variant][1]
            if variant not in best or slowest < best[variant][0]:
                best[variant] = (slowest, ttms)
    return best


def test_mp_tree_vs_direct(benchmark):
    def run():
        rows = []
        wins: dict[int, float] = {}
        for d, shape, ranks, grid_dims in CASES:
            res = _run_case(shape, ranks, grid_dims)
            t_tree, ttm_tree = res["tree"]
            t_direct, ttm_direct = res["direct"]
            # Table 1 certification: executed TTMs match closed forms.
            assert ttm_tree == hooi_ttm_count(d, dimension_tree=True)
            assert ttm_direct == hooi_ttm_count(d, dimension_tree=False)
            speedup = t_direct / t_tree
            wins[d] = speedup
            rows.append(
                [
                    d,
                    "x".join(map(str, shape)),
                    ttm_tree,
                    ttm_direct,
                    t_tree * 1e3,
                    t_direct * 1e3,
                    speedup,
                ]
            )
        return rows, wins

    rows, wins = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "mp_dimension_tree",
        format_table(
            [
                "d",
                "shape",
                "tree TTMs",
                "direct TTMs",
                "tree ms",
                "direct ms",
                "speedup",
            ],
            rows,
            title="memoized vs direct mp HOOI iteration (per iteration, "
            "slowest rank)",
        ),
    )
    if SMOKE:
        # Tiny sizes are latency noise; finishing with certified TTM
        # counts is the acceptance.
        assert rows
        return
    # Acceptance: the tree wins for d >= 4 (9 vs 13 TTMs).
    assert wins[4] > 1.0, f"d=4 tree slower ({wins[4]:.2f}x)"
