"""Comm/compute overlap on the deterministic long-vector collectives.

Times repeated large deterministic allreduces (the pipelined
pairwise-rs + ring-ag path) with ``CommConfig.overlap`` off vs on, on
real processes.  The contract this bench enforces everywhere, smoke
included: overlapping changes *scheduling only* — results bit-identical,
collective traces identical record for record — and the receive waits
the pipeline hides are visible as the ``collective_wait_hidden_seconds``
histogram in the profile.

The wall-clock column is reported but only loosely gated (overlap must
not make things dramatically worse): on an unloaded many-core host the
hidden wait converts into speedup, but on a single-core or oversubscribed
runner the prefetch thread competes with the payload math, so a hard
speedup gate would be flaky by construction.  The honest, stable claim
is the attribution one: with overlap on, the blocked-wait share of the
profile moves into the hidden histogram, and that is asserted exactly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.vmpi.mp_comm import CommConfig, ProcessComm, run_spmd

#: CI smoke mode: tiny payloads, identity checks only.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

RANKS = 3  # non-power-of-two: deterministic algorithms on every path
WORDS = 1_500_000
ROUNDS = 8
TRIALS = 3
MAX_SLOWDOWN = 1.5
if SMOKE:
    WORDS = 20_000
    ROUNDS = 2
    TRIALS = 1


def _prog(comm: ProcessComm, words: int, rounds: int) -> tuple:
    rng = np.random.default_rng(11 + comm.rank)
    a = rng.standard_normal(words)
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(rounds):
        a = comm.allreduce(a)
        a *= 1.0 / comm.size  # payload math for the prefetch to hide
    dt = time.perf_counter() - t0
    trace = [
        (r.op, r.algorithm, r.sent_messages, r.sent_words,
         r.recv_messages, r.recv_words)
        for r in comm.trace.records
    ]
    return dt / rounds, a[:64].copy(), trace


def _launch(overlap: bool, profile: bool = False):
    cfg = CommConfig(
        deterministic=True,
        overlap=overlap,
        eager_max_words=4096,
        collective_timeout=120.0,
        profile=profile,
    )
    prof: dict = {}
    outs = run_spmd(
        _prog, RANKS, WORDS, ROUNDS,
        timeout=600.0, config=cfg, profile_out=prof if profile else None,
    )
    return max(o[0] for o in outs), outs, prof


def _wait_totals(prof: dict) -> tuple[float, float]:
    visible = hidden = 0.0
    for p in prof.values():
        hists = p.metrics["histograms"]
        visible += hists.get("collective_wait_seconds", {}).get("total", 0.0)
        hidden += hists.get(
            "collective_wait_hidden_seconds", {}
        ).get("total", 0.0)
    return visible, hidden


def test_overlap(benchmark):
    def run():
        t_off = t_on = float("inf")
        outs_off = outs_on = None
        for _ in range(TRIALS):  # interleaved, best-of-trials
            t, outs, _ = _launch(False)
            if t < t_off:
                t_off, outs_off = t, outs
            t, outs, _ = _launch(True)
            if t < t_on:
                t_on, outs_on = t, outs
        # Scheduling-only: same bits, same trace, on every rank.
        for off, on in zip(outs_off, outs_on):
            np.testing.assert_array_equal(off[1], on[1])
            assert off[2] == on[2]
        # Profiled pass for the wait attribution split.
        _, _, prof_off = _launch(False, profile=True)
        _, _, prof_on = _launch(True, profile=True)
        return t_off, t_on, _wait_totals(prof_off), _wait_totals(prof_on)

    t_off, t_on, (vis_off, hid_off), (vis_on, hid_on) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_result(
        "overlap",
        format_table(
            ["overlap", "per-round ms", "visible wait s", "hidden wait s"],
            [
                ["off", t_off * 1e3, f"{vis_off:.4f}", f"{hid_off:.4f}"],
                ["on", t_on * 1e3, f"{vis_on:.4f}", f"{hid_on:.4f}"],
            ],
            title=f"deterministic allreduce x{ROUNDS}, {WORDS} words, "
            f"{RANKS} ranks (best of {TRIALS}, slowest rank)",
        ),
    )
    # The attribution claim, asserted in smoke too: overlap moves the
    # long-path receive waits into the hidden histogram.
    assert hid_off == 0.0
    assert hid_on > 0.0
    if SMOKE:
        # Tiny payloads: startup skew in the opening barrier dominates
        # every wait histogram, so the share comparison stops here.
        return
    # With real payloads the allreduce waits dominate the barrier skew:
    # the visible-wait share must drop once the pipeline hides them.
    assert vis_on < vis_off
    assert t_on <= t_off * MAX_SLOWDOWN, (
        f"overlap-on per-round {t_on * 1e3:.1f}ms vs off "
        f"{t_off * 1e3:.1f}ms exceeds {MAX_SLOWDOWN}x slowdown gate"
    )
