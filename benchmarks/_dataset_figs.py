"""Shared formatting/assertions for the dataset figures (4-9).

The progression figures (4/6/8) plot, per tolerance and starting-rank
choice, the cumulative simulated time, post-truncation relative error,
and relative size after each RA-HOSI-DT iteration, with the STHOSVD
baseline as the reference point.  The breakdown figures (5/7/9) stack
per-phase time over the iterations needed to first meet the threshold.
"""

from __future__ import annotations

from repro.analysis.breakdown import group_breakdown
from repro.analysis.experiments import DatasetExperiment
from repro.analysis.metrics import relative_size
from repro.analysis.reporting import format_breakdown, format_table


def progression_table(exp: DatasetExperiment, shape) -> str:
    rows = []
    for eps, base in sorted(exp.baselines.items(), reverse=True):
        rows.append(
            [
                eps, "sthosvd", "-", str(base.ranks), base.seconds,
                base.error, base.relative_size,
            ]
        )
        for kind in ("perfect", "over", "under"):
            run = exp.adaptive_for(eps, kind)
            cum = 0.0
            for rec, secs in zip(
                run.history, run.stats.iteration_seconds
            ):
                cum += secs
                err = (
                    rec.truncated_error
                    if rec.truncated_error is not None
                    else rec.error
                )
                ranks = (
                    rec.truncated_ranks
                    if rec.truncated_ranks is not None
                    else rec.ranks_used
                )
                rows.append(
                    [
                        eps, f"ra-hosi-dt ({kind})", rec.iteration,
                        str(ranks), cum, err,
                        relative_size(shape, ranks),
                    ]
                )
    return format_table(
        [
            "eps", "algorithm", "iter", "ranks", "cum sim sec",
            "rel error", "rel size",
        ],
        rows,
        title=(
            f"{exp.name}: error / time / size progression "
            f"({exp.cores} simulated cores)"
        ),
    )


def breakdown_table(exp: DatasetExperiment) -> str:
    labels, downs = [], []
    for eps, base in sorted(exp.baselines.items(), reverse=True):
        labels.append(f"sthosvd eps={eps}")
        downs.append(group_breakdown(base.breakdown))
        for kind in ("perfect", "over", "under"):
            run = exp.adaptive_for(eps, kind)
            upto = run.stats.first_satisfied or len(run.history)
            merged: dict[str, float] = {}
            for b in run.stats.iteration_breakdowns[:upto]:
                for k, v in b.items():
                    merged[k] = merged.get(k, 0.0) + v
            labels.append(f"ra ({kind}) eps={eps} [{upto} it]")
            downs.append(group_breakdown(merged))
    return format_breakdown(
        labels,
        downs,
        title=(
            f"{exp.name}: time breakdown until threshold "
            f"({exp.cores} simulated cores)"
        ),
    )


def assert_all_converged(exp: DatasetExperiment) -> None:
    for run in exp.adaptive:
        assert run.stats.converged, (run.eps, run.start.kind)


def speedup_at(exp: DatasetExperiment, eps: float, kind: str) -> float:
    """STHOSVD time over RA time-to-threshold (paper's headline metric)."""
    base = exp.baselines[eps]
    run = exp.adaptive_for(eps, kind)
    t = run.time_to_threshold()
    assert t is not None
    return base.seconds / t
