"""Ablation — Alg. 3 (all-modes alpha growth + cross-mode truncation)
vs the Xiao-Yang-style mode-wise strategy (§2.3 related work).

Compares final storage, iterations, and robustness to bad starting
ranks on a tensor with an anisotropic multilinear spectrum.
"""

from __future__ import annotations

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.modewise_adaptive import (
    ModewiseOptions,
    modewise_adaptive_hooi,
)
from repro.core.rank_adaptive import RankAdaptiveOptions, rank_adaptive_hooi
from repro.tensor.random import tucker_plus_noise


def test_ablation_adaptation_strategy(benchmark):
    x = tucker_plus_noise((40, 32, 24), (8, 5, 3), noise=0.03, seed=0)
    eps = 0.1
    starts = {
        "perfect": (8, 5, 3),
        "over": (10, 7, 4),
        "under": (6, 4, 2),
        "ones": (1, 1, 1),
    }

    def run():
        rows, results = [], {}
        for kind, start in starts.items():
            ra_t, ra_s = rank_adaptive_hooi(
                x, eps, start,
                RankAdaptiveOptions(max_iters=5, stop_at_threshold=False),
            )
            rows.append(
                [
                    "ra-hosi-dt", kind, str(ra_t.ranks),
                    ra_t.storage_size(), ra_s.converged,
                    len(ra_s.history),
                ]
            )
            mw_t, mw_s = modewise_adaptive_hooi(
                x, eps, start, ModewiseOptions(max_iters=5)
            )
            rows.append(
                [
                    "modewise", kind, str(mw_t.ranks),
                    mw_t.storage_size(), mw_s.converged,
                    mw_s.iterations,
                ]
            )
            results[kind] = (ra_s, mw_s, ra_t, mw_t)
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_adaptation",
        format_table(
            ["strategy", "start", "final ranks", "storage", "converged",
             "iters"],
            rows,
            title=(
                "Ablation: Alg. 3 vs mode-wise (Xiao-Yang style) rank "
                f"adaptation, eps={0.1}"
            ),
        ),
    )
    # Alg. 3 converges from every start, including all-ones.
    for kind, (ra_s, mw_s, ra_t, mw_t) in results.items():
        assert ra_s.converged, kind
    # The mode-wise strategy cannot escape the all-ones start
    # (documented limitation; Alg. 3's multiplicative growth can).
    assert not results["ones"][1].converged
    # Where both converge, Alg. 3's storage is at least as good.
    for kind in ("perfect", "over"):
        ra_s, mw_s, ra_t, mw_t = results[kind]
        if mw_s.converged:
            assert ra_t.storage_size() <= mw_t.storage_size() * 1.05, kind
