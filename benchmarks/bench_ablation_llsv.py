"""Ablation — LLSV kernel choice inside STHOSVD (paper §2.1 lists
Gram+EVD, LQ+SVD, and randomized range finding as alternatives).

Measures real wall-clock and achieved error of error-specified STHOSVD
under each spectrum-forming kernel, plus rank-specified runs with the
randomized kernel, on one compressible tensor.
"""

from __future__ import annotations

import time

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.sthosvd import sthosvd
from repro.datasets import miranda_like
from repro.linalg.llsv import LLSVMethod


def test_ablation_llsv_kernels(benchmark):
    x = miranda_like(64, seed=0).astype("float64")
    eps = 0.05

    def run():
        rows, out = [], {}
        for method in (LLSVMethod.GRAM_EVD, LLSVMethod.LQ_SVD):
            t0 = time.perf_counter()
            tucker, _ = sthosvd(x, eps=eps, method=method)
            dt = time.perf_counter() - t0
            err = tucker.relative_error(x)
            rows.append(
                [method.value, "eps=0.05", str(tucker.ranks), err, dt]
            )
            out[method] = (tucker.ranks, err)
        # Randomized is rank-specified: reuse the Gram ranks.
        ranks = out[LLSVMethod.GRAM_EVD][0]
        t0 = time.perf_counter()
        tucker, _ = sthosvd(
            x, ranks=ranks, method=LLSVMethod.RANDOMIZED, seed=0
        )
        dt = time.perf_counter() - t0
        err = tucker.relative_error(x)
        rows.append(
            [LLSVMethod.RANDOMIZED.value, f"ranks={ranks}",
             str(tucker.ranks), err, dt]
        )
        out[LLSVMethod.RANDOMIZED] = (tucker.ranks, err)

        # Kronecker-structured sketch (Minster et al. [20]): compute
        # all factors from sketched ranges and measure the error.
        from repro.core.tucker import TuckerTensor
        from repro.linalg.randomized import kronecker_range_finder
        from repro.tensor.ops import multi_ttm

        t0 = time.perf_counter()
        factors = [
            kronecker_range_finder(x, m, ranks[m], seed=m)
            for m in range(x.ndim)
        ]
        core = multi_ttm(x, factors, transpose=True)
        dt = time.perf_counter() - t0
        kt = TuckerTensor(core=core, factors=factors)
        err = kt.relative_error(x)
        rows.append(
            ["kron_sketch", f"ranks={ranks}", str(kt.ranks), err, dt]
        )
        out["kron_sketch"] = (kt.ranks, err)
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_llsv_kernels",
        format_table(
            ["kernel", "spec", "ranks", "rel error", "wall seconds"],
            rows,
            title="Ablation: LLSV kernel inside STHOSVD",
        ),
    )
    # The two spectrum-forming kernels agree on ranks and error.
    g, l = out[LLSVMethod.GRAM_EVD], out[LLSVMethod.LQ_SVD]
    assert g[0] == l[0]
    assert abs(g[1] - l[1]) < 1e-6
    # Both meet the budget; randomized at the same ranks is close.
    assert g[1] <= eps and l[1] <= eps
    assert out[LLSVMethod.RANDOMIZED][1] <= eps * 1.5
    # Structured sketching is also in the same accuracy neighbourhood.
    assert out["kron_sketch"][1] <= eps * 2.0
