"""Figure 7 — HCCI: running-time breakdown per compression level.

Asserted shape: in the 4-way TTM-dominated regime, TTM time is the
bulk of RA-HOSI-DT's cost at every tolerance (paper's explanation for
the small speedups relative to Miranda's).
"""

from __future__ import annotations

from _dataset_figs import breakdown_table
from _util import save_result
from repro.analysis.breakdown import group_breakdown


def test_fig7_hcci_breakdown(benchmark, hcci_experiment):
    exp, _ = hcci_experiment
    table = benchmark.pedantic(
        lambda: breakdown_table(exp), rounds=1, iterations=1
    )
    save_result("fig7_hcci_breakdown", table)

    for eps in (0.1, 0.01):
        run = exp.adaptive_for(eps, "over")
        upto = run.stats.first_satisfied
        merged: dict[str, float] = {}
        for b in run.stats.iteration_breakdowns[:upto]:
            for k, v in b.items():
                merged[k] = merged.get(k, 0.0) + v
        ra = group_breakdown(merged)
        # TTM-like work (tree TTMs + the subspace TTM/contraction) is
        # the bulk of the cost in this regime.
        ttm_like = ra["TTM"] + ra.get("Subspace", 0.0)
        assert ttm_like >= 0.5 * sum(ra.values()), eps
        assert ra["TTM"] == max(ra.values()), eps
