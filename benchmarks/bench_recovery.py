"""Elastic in-run recovery vs full restart after a mid-run crash.

Seeds a hard rank kill late in an ``mp_hooi_dt`` run and compares the
two ways back to a finished result:

* **full restart** (``recovery="restart"``, the default): the run
  aborts, the time already spent is wasted, and the job reruns from
  scratch — cost = wasted-run seconds + a clean rerun.
* **in-run recovery** (``recovery="respawn"`` / ``"shrink"``): the
  survivors agree on the failed set, the world relaunches, and the
  sweep loop resumes from the buddy-replicated boundary checkpoint —
  cost = agreement + the continuation attempt (relaunch + the
  remaining sweeps only).

Identity is asserted everywhere, smoke included: the recovered factors
must be bit-identical to the fault-free run's.  The wall-clock gate —
recovery under 25% of the full-restart cost — only holds when the
redone tail is small relative to the job, so it is enforced in full
mode only; smoke keeps the correctness claims and skips the timing.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.hooi import HOOIOptions
from repro.distributed.mp_hooi import mp_hooi_dt
from repro.vmpi.faults import FaultPlan
from repro.vmpi.mp_comm import CommConfig, RankFailureError

#: CI smoke mode: tiny tensor, identity checks only.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

GRID = (2, 2, 1)  # 4 real processes
SHAPE = (96, 90, 84)
RANKS = (12, 12, 10)
MAX_ITERS = 6
#: collective index inside the final sweep (~13 collectives per sweep
#: after ~11 setup ops on this grid/tree): the continuation redoes one
#: sweep out of six.
KILL_OP = 76
MAX_RECOVERY_SHARE = 0.25
if SMOKE:
    SHAPE = (8, 9, 7)
    RANKS = (3, 3, 2)
    MAX_ITERS = 3
    KILL_OP = 11


def _opts() -> HOOIOptions:
    return HOOIOptions(max_iters=MAX_ITERS, seed=1)


def _cfg(policy: str | None) -> CommConfig:
    return CommConfig(
        collective_timeout=60.0,
        fault_plan=(
            None
            if policy is None
            else FaultPlan.kill(1, op_index=KILL_OP)
        ),
        recovery=policy if policy in ("respawn", "shrink") else "restart",
    )


def _assert_tucker_equal(a, b) -> None:
    np.testing.assert_array_equal(a.core, b.core)
    for u, v in zip(a.factors, b.factors):
        np.testing.assert_array_equal(u, v)


def test_recovery(benchmark):
    x = np.random.default_rng(0).standard_normal(SHAPE)

    def run():
        # Fault-free baseline = the cost of one clean rerun.
        t0 = time.perf_counter()
        base, _ = mp_hooi_dt(x, RANKS, GRID, _opts(), comm_config=_cfg(None))
        t_clean = time.perf_counter() - t0

        # Restart policy: the crash aborts the run; everything spent
        # up to the abort is wasted, then the job pays t_clean again.
        t0 = time.perf_counter()
        try:
            mp_hooi_dt(
                x, RANKS, GRID, _opts(), comm_config=_cfg("restart")
            )
            raise AssertionError("seeded fault did not fire")
        except RankFailureError:
            t_wasted = time.perf_counter() - t0
        t_restart = t_wasted + t_clean

        rows = []
        for policy in ("respawn", "shrink"):
            t0 = time.perf_counter()
            tucker, stats = mp_hooi_dt(
                x, RANKS, GRID, _opts(), comm_config=_cfg(policy)
            )
            t_total = time.perf_counter() - t0
            _assert_tucker_equal(tucker, base)
            (event,) = stats.recovery_events
            t_recover = event.agree_seconds + event.relaunch_seconds
            rows.append(
                (policy, t_total, t_recover, event.resumed_iteration)
            )
        return t_clean, t_wasted, t_restart, base, rows

    t_clean, t_wasted, t_restart, base, rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table_rows = [
        ["full restart", "-", t_wasted + t_clean, t_restart, "100.0%"],
    ]
    for policy, t_total, t_recover, resumed in rows:
        table_rows.append(
            [
                policy,
                resumed,
                t_total,
                t_recover,
                f"{t_recover / t_restart * 100:.1f}%",
            ]
        )
    save_result(
        "recovery",
        format_table(
            [
                "strategy", "resumed iter", "run total s",
                "time after crash s", "vs full restart",
            ],
            table_rows,
            title=(
                f"crash at collective {KILL_OP} of mp_hooi_dt "
                f"{SHAPE} -> {RANKS}, grid {GRID}, "
                f"{MAX_ITERS} sweeps (clean run {t_clean:.3f}s)"
            ),
        ),
    )
    for policy, _, t_recover, resumed in rows:
        if SMOKE:
            continue
        # The crash lands in the final sweep; resuming from its opening
        # boundary means redoing one sweep, not the whole job.
        assert resumed >= MAX_ITERS - 2
        assert t_recover < MAX_RECOVERY_SHARE * t_restart, (
            f"{policy}: recovery took {t_recover:.3f}s, over "
            f"{MAX_RECOVERY_SHARE:.0%} of the {t_restart:.3f}s "
            "full-restart cost"
        )
