"""Figure 9 — SP: running-time breakdown per compression level.

Asserted shape (paper §4.2.2): at mid compression from perfect starting
ranks, RA-HOSI-DT reaches the tolerance in less simulated time than
STHOSVD (paper: 1.4x speedup).
"""

from __future__ import annotations

from _dataset_figs import breakdown_table, speedup_at
from _util import save_result


def test_fig9_sp_breakdown(benchmark, sp_experiment):
    exp, _ = sp_experiment
    table = benchmark.pedantic(
        lambda: breakdown_table(exp), rounds=1, iterations=1
    )
    save_result("fig9_sp_breakdown", table)

    # Mid compression, perfect ranks: RA-HOSI-DT beats STHOSVD to the
    # threshold (paper: 1.4x).
    assert speedup_at(exp, 0.05, "perfect") > 1.0
