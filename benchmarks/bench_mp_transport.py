"""Transport shoot-out: peer-to-peer shared-memory vs legacy star.

Times the three bandwidth-bound collectives (allreduce, reduce-scatter,
allgather) on real processes at p = 4 across payload sizes from 8 KiB
to 8 MiB, comparing the pooled shared-memory peer-to-peer transport
against the legacy coordinator-star transport it replaced.  The star
serializes every block twice (rank -> coordinator -> rank, both
pickled), so the p2p path must win decisively once payloads are large
enough for bandwidth to dominate — the table asserts it does on every
>= 1 MiB row.  (Small payloads are latency-bound, and on an
oversubscribed host the star's single sequential coordinator is a
scheduling-friendly shape; those rows document the crossover rather
than assert on it.)

Timing happens *inside* the ranks (process spawn/join excluded); the
reported figure is the slowest rank's per-call time, best of two runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.vmpi.mp_comm import run_spmd

#: CI smoke mode: tiny payloads, one trial, no speedup assertions —
#: exercises both transports end-to-end and fails only on crashes.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

P = 4
# (label, payload words per collective) — float64, so words x 8 bytes.
SIZES = [
    ("8KiB", 1 << 10),
    ("64KiB", 1 << 13),
    ("2MiB", 1 << 18),
    ("8MiB", 1 << 20),
]
OPS = ("allreduce", "reduce_scatter", "allgather")
REPS = {1 << 10: 12, 1 << 13: 10, 1 << 18: 6, 1 << 20: 3}
TRIALS = 3
if SMOKE:
    SIZES = [("8KiB", 1 << 10), ("64KiB", 1 << 13)]
    REPS = {1 << 10: 2, 1 << 13: 2}
    TRIALS = 1


def _bench_program(comm, op: str, words: int, reps: int) -> float:
    rng = np.random.default_rng(100 + comm.rank)
    if op == "allgather":
        arr = rng.standard_normal(words // comm.size)
    else:
        arr = rng.standard_normal(words)

    def once():
        if op == "allreduce":
            comm.allreduce(arr)
        elif op == "reduce_scatter":
            comm.reduce_scatter(arr, axis=0)
        else:
            comm.allgather(arr, axis=0)

    once()  # warm-up: fault in buffers, build the segment pool
    once()
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(reps):
        once()
    return time.perf_counter() - t0


def _time_collective(transport: str, op: str, words: int) -> float:
    """Slowest-rank seconds per call, best of TRIALS runs."""
    reps = REPS[words]
    best = float("inf")
    for _ in range(TRIALS):
        elapsed = run_spmd(
            _bench_program, P, op, words, reps,
            transport=transport, timeout=300.0,
        )
        best = min(best, max(elapsed) / reps)
    return best


def test_mp_transport_shootout(benchmark):
    def run():
        rows = []
        speedups_1mib_up = []
        for label, words in SIZES:
            for op in OPS:
                t_star = _time_collective("star", op, words)
                t_p2p = _time_collective("p2p", op, words)
                speedup = t_star / t_p2p
                rows.append(
                    [op, label, words * 8, t_star * 1e3, t_p2p * 1e3,
                     speedup]
                )
                if words * 8 >= 1 << 20:
                    speedups_1mib_up.append((op, label, speedup))
        return rows, speedups_1mib_up

    rows, speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "mp_transport",
        format_table(
            ["op", "payload", "bytes", "star ms", "p2p ms", "speedup"],
            rows,
            title=f"star vs p2p transport, p={P} (per-call, slowest rank)",
        ),
    )
    if SMOKE:
        # Smoke mode ran no >= 1 MiB rows; reaching here without a
        # crash is the acceptance.
        assert rows
        return
    # Acceptance: the shared-memory path beats the star on every
    # >= 1 MiB payload.
    assert speedups, "no >= 1 MiB rows measured"
    for op, label, speedup in speedups:
        assert speedup > 1.0, f"{op} @ {label}: p2p slower ({speedup:.2f}x)"
