"""Transport shoot-out: shared-memory vs tcp vs legacy star.

Times the three bandwidth-bound collectives (allreduce, reduce-scatter,
allgather) on real processes at p = 4 across payload sizes from 8 KiB
to 8 MiB, comparing the pooled shared-memory peer-to-peer transport
against the tcp socket transport and the legacy coordinator-star
transport.  The star serializes every block twice (rank ->
coordinator -> rank, both pickled), so the p2p path must win
decisively once payloads are large enough for bandwidth to dominate —
the table asserts it does on every >= 1 MiB row.  (Small payloads are
latency-bound, and on an oversubscribed host the star's single
sequential coordinator is a scheduling-friendly shape; those rows
document the crossover rather than assert on it.)

The shm-vs-tcp pairing is reported through the postal model: per
collective, the measured (bytes, seconds) samples of each wire are
least-squares fitted to ``t = alpha + beta * bytes``
(:func:`repro.vmpi.collectives.fit_alpha_beta`) and the payload size
where the lines cross
(:func:`repro.vmpi.collectives.transport_crossover_bytes`) is the
break-even point — below it the lower-alpha wire wins, above it the
lower-beta one.  On one host shm should dominate everywhere
(crossover ``inf``); the fitted alphas/betas are what a multi-host
deployment needs to predict when sockets stop hurting.  No assertion
rides on the fit — loopback tcp numbers are a model input, not a
performance claim.

Timing happens *inside* the ranks (process spawn/join excluded); the
reported figure is the slowest rank's per-call time, best of two runs.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.vmpi.collectives import fit_alpha_beta, transport_crossover_bytes
from repro.vmpi.mp_comm import run_spmd

#: CI smoke mode: tiny payloads, one trial, no speedup assertions —
#: exercises both transports end-to-end and fails only on crashes.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

P = 4
# (label, payload words per collective) — float64, so words x 8 bytes.
SIZES = [
    ("8KiB", 1 << 10),
    ("64KiB", 1 << 13),
    ("2MiB", 1 << 18),
    ("8MiB", 1 << 20),
]
OPS = ("allreduce", "reduce_scatter", "allgather")
REPS = {1 << 10: 12, 1 << 13: 10, 1 << 18: 6, 1 << 20: 3}
TRIALS = 3
if SMOKE:
    SIZES = [("8KiB", 1 << 10), ("64KiB", 1 << 13)]
    REPS = {1 << 10: 2, 1 << 13: 2}
    TRIALS = 1


def _bench_program(comm, op: str, words: int, reps: int) -> float:
    rng = np.random.default_rng(100 + comm.rank)
    if op == "allgather":
        arr = rng.standard_normal(words // comm.size)
    else:
        arr = rng.standard_normal(words)

    def once():
        if op == "allreduce":
            comm.allreduce(arr)
        elif op == "reduce_scatter":
            comm.reduce_scatter(arr, axis=0)
        else:
            comm.allgather(arr, axis=0)

    once()  # warm-up: fault in buffers, build the segment pool
    once()
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(reps):
        once()
    return time.perf_counter() - t0


def _time_collective(transport: str, op: str, words: int) -> float:
    """Slowest-rank seconds per call, best of TRIALS runs."""
    reps = REPS[words]
    best = float("inf")
    for _ in range(TRIALS):
        elapsed = run_spmd(
            _bench_program, P, op, words, reps,
            transport=transport, timeout=300.0,
        )
        best = min(best, max(elapsed) / reps)
    return best


def _crossover_rows(samples: dict[str, dict[str, list]]) -> list[list]:
    """Fit the postal model per op and locate the shm/tcp break-even."""
    rows = []
    for op in OPS:
        s = samples[op]
        shm_fit = fit_alpha_beta(s["bytes"], s["shm"])
        tcp_fit = fit_alpha_beta(s["bytes"], s["tcp"])
        cross = transport_crossover_bytes(shm_fit, tcp_fit)
        rows.append([
            op,
            shm_fit[0] * 1e6, shm_fit[1] * 1e9,
            tcp_fit[0] * 1e6, tcp_fit[1] * 1e9,
            "inf" if math.isinf(cross) else f"{cross:.0f}",
        ])
    return rows


def test_mp_transport_shootout(benchmark):
    def run():
        rows = []
        speedups_1mib_up = []
        samples: dict[str, dict[str, list]] = {
            op: {"bytes": [], "shm": [], "tcp": []} for op in OPS
        }
        for label, words in SIZES:
            for op in OPS:
                t_star = _time_collective("star", op, words)
                t_p2p = _time_collective("p2p", op, words)
                t_tcp = _time_collective("tcp", op, words)
                speedup = t_star / t_p2p
                rows.append(
                    [op, label, words * 8, t_star * 1e3, t_p2p * 1e3,
                     t_tcp * 1e3, speedup]
                )
                samples[op]["bytes"].append(words * 8)
                samples[op]["shm"].append(t_p2p)
                samples[op]["tcp"].append(t_tcp)
                if words * 8 >= 1 << 20:
                    speedups_1mib_up.append((op, label, speedup))
        return rows, speedups_1mib_up, samples

    rows, speedups, samples = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_result(
        "mp_transport",
        format_table(
            ["op", "payload", "bytes", "star ms", "p2p ms", "tcp ms",
             "speedup"],
            rows,
            title=(
                f"star vs p2p vs tcp transport, p={P} "
                f"(per-call, slowest rank; speedup = star/p2p)"
            ),
        )
        + "\n\n"
        + format_table(
            ["op", "shm alpha us", "shm beta ns/B", "tcp alpha us",
             "tcp beta ns/B", "crossover bytes"],
            _crossover_rows(samples),
            title=(
                "postal-model fit t = alpha + beta*bytes per wire; "
                "crossover = payload where tcp stops losing "
                "(inf: shm wins at every size)"
            ),
        ),
    )
    if SMOKE:
        # Smoke mode ran no >= 1 MiB rows; reaching here without a
        # crash is the acceptance.
        assert rows
        return
    # Acceptance: the shared-memory path beats the star on every
    # >= 1 MiB payload.
    assert speedups, "no >= 1 MiB rows measured"
    for op, label, speedup in speedups:
        assert speedup > 1.0, f"{op} @ {label}: p2p slower ({speedup:.2f}x)"
