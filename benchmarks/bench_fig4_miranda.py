"""Figure 4 — Miranda: error/time/size progression of RA-HOSI-DT.

3-way surrogate at 1024 simulated cores, tolerances 0.1/0.05/0.01,
starting ranks perfect/over/under, 3 iterations.  Headline shape
(paper §4.2.1): large speedups over STHOSVD in the high- and
mid-compression regimes, with compression at least comparable.
"""

from __future__ import annotations

from _dataset_figs import (
    assert_all_converged,
    progression_table,
    speedup_at,
)
from _util import save_result


def test_fig4_miranda_progression(benchmark, miranda_experiment):
    exp, x = miranda_experiment
    table = benchmark.pedantic(
        lambda: progression_table(exp, x.shape), rounds=1, iterations=1
    )
    save_result("fig4_miranda_progression", table)

    assert_all_converged(exp)
    # High compression: RA-HOSI-DT reaches the threshold much faster
    # than STHOSVD (paper: 82x perfect / 156x over / 91x under; our
    # surrogate is 192^3 vs the paper's 3072^3, so the EVD bottleneck —
    # and hence the factor — is smaller but the ordering holds).
    assert speedup_at(exp, 0.1, "over") > 20
    for kind in ("perfect", "under"):
        assert speedup_at(exp, 0.1, kind) > 10, kind
    # Mid compression still shows solid speedups (paper: 25-47x).
    for kind in ("perfect", "over", "under"):
        assert speedup_at(exp, 0.05, kind) > 5, kind
    # Compression ratio at high compression is at least comparable
    # (paper: up to 69% better relative compression).
    base = exp.baselines[0.1]
    run = exp.adaptive_for(0.1, "perfect")
    assert run.final_relative_size(x.shape) <= base.relative_size * 1.2
