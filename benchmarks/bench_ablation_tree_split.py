"""Ablation — dimension-tree shape: balanced split vs caterpillar.

Kaya & Robert [15] study optimal tree structures; the paper uses a
balanced-half heuristic.  This bench compares the TTM counts and
simulated flops of the balanced tree against a maximally skewed
("single"/caterpillar) tree and against no memoization at all.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.dimension_tree import contraction_schedule
from repro.core.hooi import HOOIOptions
from repro.distributed.arrays import SymbolicArray
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.hooi import (
    DistributedTreeEngine,
    initial_dist_factors,
)
from repro.core.dimension_tree import hooi_iteration_dt
from repro.vmpi.cost import CostLedger
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.machine import perlmutter_like


def _tree_flops(d: int, n: int, r: int, rule: str) -> float:
    shape, ranks = (n,) * d, (r,) * d
    grid = ProcessorGrid((1,) * d)
    ledger = CostLedger(perlmutter_like(), 1)
    x = DistTensor(SymbolicArray(shape, np.float32), grid, ledger)
    factors = initial_dist_factors(x.data, ranks)
    engine = DistributedTreeEngine(factors, ranks)
    hooi_iteration_dt(x, engine, rule=rule)
    return ledger.phases["ttm"].flops


def test_ablation_tree_split(benchmark):
    cases = [(3, 128, 8), (4, 64, 6), (6, 16, 3)]

    def run():
        rows, flops = [], {}
        for d, n, r in cases:
            half = _tree_flops(d, n, r, "half")
            single = _tree_flops(d, n, r, "single")
            n_half = len(contraction_schedule(d, "half"))
            n_single = len(contraction_schedule(d, "single"))
            direct = d * (d - 1)
            rows.append(
                [d, n_half, n_single, direct, half, single, single / half]
            )
            flops[d] = (half, single)
        return rows, flops

    rows, flops = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_tree_split",
        format_table(
            [
                "d", "TTMs (half)", "TTMs (single)", "TTMs (direct)",
                "flops (half)", "flops (single)", "single/half",
            ],
            rows,
            title="Ablation: dimension-tree split rule (per iteration)",
        ),
    )
    # The balanced tree never does more flops.  The two dominant
    # root-adjacent TTMs are shared by both shapes, so the flop gap is
    # second-order (observable but modest); the TTM *count* gap grows
    # with d (O(d log d) vs O(d^2)).
    for d, (half, single) in flops.items():
        assert half <= single * 1.001, d
    assert flops[6][1] / flops[6][0] > 1.05
    assert len(contraction_schedule(6, "single")) > len(
        contraction_schedule(6, "half")
    )
