"""Memory feasibility — reproduces the paper's single-node tensor sizing.

The paper maximizes the synthetic tensor that fits on one 512 GB
Perlmutter node (3750^3 float32 for 3-way, 560^4 for 4-way) and the
artifact's reviewers hit out-of-memory on mis-sized batch runs.  This
bench regenerates the sizing table from the machine model and checks the
ledger's simulated peak-memory accounting against it.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.memory import max_cubic_dim, required_nodes, tensor_fits
from repro.analysis.reporting import format_table
from repro.distributed.arrays import SymbolicArray
from repro.distributed.sthosvd import dist_sthosvd


def test_memory_sizing(benchmark):
    def run():
        rows = []
        for d, paper_n in ((3, 3750), (4, 560), (5, 175)):
            n = max_cubic_dim(d, dtype_bytes=4)
            rows.append(
                [d, n, paper_n if d in (3, 4) else "-",
                 tensor_fits((paper_n,) * d, dtype_bytes=4)
                 if d in (3, 4) else "-"]
            )
        datasets = [
            ("miranda", (3072,) * 3, 4, 8),       # paper: 8 nodes used
            ("hcci", (672, 672, 33, 626), 8, 1),  # paper: 1 node
            ("sp", (500, 500, 500, 11, 400), 8, 16),  # paper: 16 nodes
        ]
        ds_rows = [
            [name, str(shape), required_nodes(shape, dtype_bytes=b), nodes]
            for name, shape, b, nodes in datasets
        ]
        return rows, ds_rows

    rows, ds_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "memory_sizing",
        format_table(
            ["d", "max cubic n (ours)", "paper's pick", "paper pick fits?"],
            rows,
            title="Single-node (512 GB) float32 tensor sizing",
        )
        + "\n\n"
        + format_table(
            ["dataset", "shape", "min nodes (model)", "paper nodes"],
            ds_rows,
            title="Dataset node requirements",
        ),
    )
    # The paper's picks fit; our model's max is in the same regime.
    assert tensor_fits((3750,) * 3, dtype_bytes=4)
    assert tensor_fits((560,) * 4, dtype_bytes=4)
    # The paper's node counts are at or above the model's minimum.
    for (name, shape, mn, paper) in [
        (r[0], r[1], r[2], r[3]) for r in ds_rows
    ]:
        assert mn <= paper, name


def test_simulated_peak_memory_scaling(benchmark):
    """The ledger's per-rank peak shrinks ~1/P; a 3750^3 STHOSVD run is
    memory-infeasible on too few ranks and feasible at the paper's
    scale."""

    def run():
        rows, peaks = [], {}
        for p, dims in ((1, (1, 1, 1)), (64, (1, 8, 8)), (1024, (1, 32, 32))):
            x = SymbolicArray((3750, 3750, 3750), np.float32)
            _, stats = dist_sthosvd(x, dims, ranks=(30, 30, 30))
            led = stats.ledger
            rows.append(
                [p, led.peak_words, led.memory_feasible(dtype_bytes=4)]
            )
            peaks[p] = led
        return rows, peaks

    rows, peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "memory_peak_scaling",
        format_table(
            ["P", "peak words/rank", "fits DRAM share (float32)"],
            rows,
            title="Simulated per-rank peak memory, 3750^3 STHOSVD",
        ),
    )
    assert peaks[1].memory_feasible(dtype_bytes=4)  # 1 rank = whole node
    assert peaks[1024].memory_feasible(dtype_bytes=4)
    assert peaks[1024].peak_words < peaks[64].peak_words < peaks[1].peak_words
