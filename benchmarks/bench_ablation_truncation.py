"""Ablation — exhaustive (eq. 3) vs greedy core truncation.

Quantifies the paper's §5 claim that the cross-mode flexibility of the
exhaustive core analysis is what lets RA-HOSI-DT beat STHOSVD's
compression: we run RA-HOSI-DT with both truncation solvers on every
dataset surrogate and compare final storage.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.rank_adaptive import RankAdaptiveOptions, rank_adaptive_hooi
from repro.core.sthosvd import sthosvd
from repro.datasets import hcci_like, miranda_like, sp_like


def _case(name, x, eps):
    base, _ = sthosvd(x, eps=eps)
    out = {"sthosvd": (base.ranks, base.storage_size())}
    for trunc in ("exhaustive", "greedy"):
        opts = RankAdaptiveOptions(
            max_iters=3, stop_at_threshold=False, truncation=trunc
        )
        tucker, stats = rank_adaptive_hooi(x, eps, base.ranks, opts)
        assert stats.converged, (name, trunc)
        assert tucker.relative_error(x) <= eps * (1 + 1e-6)
        out[trunc] = (tucker.ranks, tucker.storage_size())
    return out


def test_ablation_truncation(benchmark):
    datasets = {
        "miranda": miranda_like(48, seed=0).astype(np.float64),
        "hcci": hcci_like((32, 32, 5, 24), seed=0),
        "sp": sp_like((20, 20, 20, 5, 16), seed=0),
    }

    def run():
        rows = []
        results = {}
        for name, x in datasets.items():
            for eps in (0.1, 0.01):
                res = _case(name, x, eps)
                results[(name, eps)] = res
                for solver, (ranks, storage) in res.items():
                    rows.append([name, eps, solver, str(ranks), storage])
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_truncation",
        format_table(
            ["dataset", "eps", "solver", "ranks", "storage (values)"],
            rows,
            title="Ablation: exhaustive (eq. 3) vs greedy truncation",
        ),
    )
    # Per *call*, the exhaustive solver is optimal (greedy trajectories
    # can still end elsewhere after multiple truncate-and-iterate
    # rounds, so the final storages are compared against the STHOSVD
    # baseline instead — the paper's actual claim).
    for (name, eps), res in results.items():
        base = res["sthosvd"][1]
        assert res["exhaustive"][1] <= base * 1.01, (name, eps)
    # Direct single-call optimality check on a fixed core.
    from repro.core.core_analysis import (
        greedy_rank_truncation,
        solve_rank_truncation,
    )

    rng = np.random.default_rng(0)
    core = rng.standard_normal((6, 5, 4)) * 2.0 ** -rng.integers(
        0, 5, size=(6, 5, 4)
    )
    total = float(np.linalg.norm(core) ** 2)
    shape = (100, 80, 60)
    exh = solve_rank_truncation(core, 0.9 * total, shape)
    gre = greedy_rank_truncation(core, 0.9 * total, shape)

    def storage(r):
        p = 1
        for v in r:
            p *= v
        return p + sum(n * v for n, v in zip(shape, r))

    assert storage(exh) <= storage(gre)
