"""The §3.1 crossover — when is HOSI-DT cheaper than STHOSVD?

The paper's central analysis: with dimension trees and two iterations,
HOOI's flop count beats STHOSVD's roughly when the per-mode dimension
reduction satisfies ``n/r > 8`` (unoptimized HOOI needs ``n/r > 4d``).
This bench sweeps the rank at fixed ``n`` on the cost model (P = 1, so
no EVD/communication effects — pure §3.1 flop comparison), locates the
measured crossover, and checks it lands where the analysis predicts.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.hooi import variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd

N, D = 256, 3
RATIOS = (2, 4, 6, 8, 12, 16, 32)


def _flops(algo_ratio):
    r = max(N // algo_ratio, 1)
    x = SymbolicArray((N,) * D, np.float32)
    _, st_stats = dist_sthosvd(x, (1,) * D, ranks=(r,) * D)
    opts = variant_options("hosi-dt", max_iters=2)
    _, ho_stats = dist_hooi(x, (r,) * D, (1,) * D, options=opts)
    sth = st_stats.ledger.total_flops() + st_stats.ledger.total_seq_flops()
    hosi = ho_stats.ledger.total_flops() + ho_stats.ledger.total_seq_flops()
    return r, sth, hosi


def test_crossover(benchmark):
    def run():
        rows = []
        for ratio in RATIOS:
            r, sth, hosi = _flops(ratio)
            rows.append([ratio, r, sth, hosi, sth / hosi])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "crossover",
        format_table(
            [
                "n/r", "r", "sthosvd flops", "hosi-dt flops (2 it)",
                "sthosvd/hosi-dt",
            ],
            rows,
            title=(
                f"Section 3.1 crossover: {D}-way n={N}, rank sweep "
                "(P=1, total flops incl. sequential terms)"
            ),
        ),
    )
    gain = {ratio: row[4] for ratio, row in zip(RATIOS, rows)}
    # Deep reduction: HOSI-DT clearly cheaper (paper: n/r >> 8).
    assert gain[32] > 2.0
    assert gain[16] > 1.5
    # Shallow reduction: STHOSVD cheaper (n/r well below 8).
    assert gain[2] < 1.0
    # The crossover sits in the predicted neighbourhood of n/r ~ 8.
    assert gain[4] < 1.2
    assert gain[8] > 0.8
