"""Figure 6 — HCCI: error/time/size progression of RA-HOSI-DT.

4-way surrogate at 128 simulated cores.  In this TTM-dominated regime
the comparisons are "less extreme" (paper §4.2.2): modest speedups when
overshooting at high/mid compression; STHOSVD can win outright at low
compression.
"""

from __future__ import annotations

from _dataset_figs import (
    assert_all_converged,
    progression_table,
    speedup_at,
)
from _util import save_result


def test_fig6_hcci_progression(benchmark, hcci_experiment):
    exp, x = hcci_experiment
    table = benchmark.pedantic(
        lambda: progression_table(exp, x.shape), rounds=1, iterations=1
    )
    save_result("fig6_hcci_progression", table)

    assert_all_converged(exp)
    # Overshooting converges in one iteration at every tolerance.
    for eps in (0.1, 0.05, 0.01):
        run = exp.adaptive_for(eps, "over")
        assert run.stats.first_satisfied == 1, eps
    # High compression with overshoot: RA wins (paper: 1.9x).
    assert speedup_at(exp, 0.1, "over") > 1.0
    # The gap is much smaller than Miranda's (TTM-dominated regime).
    assert speedup_at(exp, 0.1, "over") < 50
    # Perfect/under starts achieve compression at least as good as
    # STHOSVD after 3 iterations (paper: better compression, 3 iters).
    base = exp.baselines[0.1]
    run = exp.adaptive_for(0.1, "perfect")
    assert run.final_relative_size(x.shape) <= base.relative_size * 1.1
