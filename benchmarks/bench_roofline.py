"""Roofline table — supports the paper's §5 local-efficiency discussion.

Regenerates, for the paper's experimental configurations, each leading
kernel's arithmetic intensity and attainable throughput at 1 rank and
at a fully packed node, showing why RA-HOSI-DT's flop savings do not
translate 1:1 into wall-clock at small ``r`` (the TTM becomes
bandwidth-bound) while STHOSVD's Gram stays compute-bound.
"""

from __future__ import annotations

from _util import save_result
from repro.analysis.reporting import format_table
from repro.analysis.roofline import KERNELS, kernel_point, machine_balance

CONFIGS = [
    ("3-way synthetic", 3750, 30, 3),
    ("4-way synthetic", 560, 10, 4),
]


def test_roofline_table(benchmark):
    def run():
        rows = []
        for label, n, r, d in CONFIGS:
            for kernel in KERNELS:
                for p in (1, 128):
                    pt = kernel_point(kernel, n=n, r=r, d=d, p=p)
                    rows.append(
                        [
                            label, kernel, p, pt.intensity,
                            machine_balance(p=p), pt.memory_bound,
                            pt.attainable_flops / 1e9,
                        ]
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "roofline",
        format_table(
            [
                "config", "kernel", "P", "intensity (f/w)",
                "balance (f/w)", "memory bound", "attainable GF/s",
            ],
            rows,
            title="Roofline positions of the leading kernels",
        ),
    )
    by = {
        (label, kernel, p): (mb, att)
        for label, kernel, p, _, _, mb, att in rows
    }
    # STHOSVD's Gram is compute-bound in every configuration.
    assert not by[("3-way synthetic", "sthosvd_gram", 128)][0]
    assert not by[("4-way synthetic", "sthosvd_gram", 128)][0]
    # The small-r HOOI TTM loses attainable throughput when the node is
    # packed (the paper's single-node saturation), unlike at 1 rank.
    att1 = by[("4-way synthetic", "hooi_ttm", 1)][1]
    att128 = by[("4-way synthetic", "hooi_ttm", 128)][1]
    assert att128 <= att1
