"""Result persistence helpers for the benchmark harness."""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Schema tag of the normalized machine-readable bench output.  Bump
#: on breaking changes; CI uploads ``results/BENCH_*.json`` so the
#: perf trajectory is comparable run-over-run.
BENCH_SCHEMA = "repro-bench/v1"


def save_result(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


def save_json(
    name: str,
    metrics: dict[str, object],
    *,
    params: dict[str, object] | None = None,
) -> Path:
    """Persist normalized machine-readable bench output.

    Writes ``results/BENCH_<name>.json`` with a fixed envelope::

        {"schema": "repro-bench/v1", "bench": <name>,
         "smoke": <bool>, "params": {...}, "metrics": {...}}

    ``metrics`` holds the numbers a trend dashboard charts (seconds,
    ratios, counts); ``params`` the shape/grid/rep knobs that make two
    runs comparable.  ``smoke`` is read from ``MP_BENCH_SMOKE`` so
    downstream tooling can keep CI toy shapes out of the trend lines.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "smoke": os.environ.get("MP_BENCH_SMOKE", "") == "1",
        "platform": platform.platform(),
        "params": dict(params or {}),
        "metrics": dict(metrics),
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"Wrote {path}")
    return path
