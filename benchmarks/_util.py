"""Result persistence helper for the benchmark harness."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
