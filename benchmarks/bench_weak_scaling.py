"""Weak scaling (extension study beyond the paper's evaluation).

The paper's Fig. 2 is strong scaling; this extension holds per-rank
work constant and grows the tensor with the machine.  The interesting
shape: HOSI-DT stays near-flat (its only sequential step, the QRCP,
grows slowly) while STHOSVD's curve climbs with the global mode size —
the sequential EVD costs ``O(n^3)`` regardless of rank count, so weak
scaling exposes the bottleneck even more starkly than strong scaling.
"""

from __future__ import annotations

from _util import save_result
from repro.analysis.reporting import format_series
from repro.analysis.scaling import weak_scaling

P_VALUES = [2**k for k in range(0, 13, 2)]  # 1, 4, ..., 4096


def test_weak_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: weak_scaling((512, 512, 512), (16, 16, 16), P_VALUES),
        rounds=1,
        iterations=1,
    )
    algos = sorted({p.algorithm for p in points})
    series = {
        a: [
            next(
                pt.seconds
                for pt in points
                if pt.algorithm == a and pt.p == p
            )
            for p in P_VALUES
        ]
        for a in algos
    }
    save_result(
        "weak_scaling",
        format_series(
            "P",
            P_VALUES,
            series,
            title=(
                "Weak scaling (extension): base 512^3 per rank, ranks "
                "16^3, simulated seconds"
            ),
        ),
    )
    sth_growth = series["sthosvd"][-1] / series["sthosvd"][0]
    hosi_growth = series["hosi-dt"][-1] / series["hosi-dt"][0]
    # STHOSVD deteriorates much faster than HOSI-DT under weak scaling.
    assert sth_growth > 5 * hosi_growth
    # HOSI-DT stays within an order of magnitude of flat.
    assert hosi_growth < 12
