"""Table 2 — leading-order communication costs (measured vs closed form).

Reads the ledger's per-rank communicated-word counters across grids and
tabulates them against the paper's Table 2 formulas, checking the same
proportionality criterion as the Table 1 bench plus the qualitative grid
preferences (P_1 = 1 best for STHOSVD; P_1 = P_d = 1 best for the
dimension-tree variants).
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.costs import hooi_iteration_words, sthosvd_words
from repro.analysis.reporting import format_table
from repro.core.hooi import variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd

N, R = 128, 8
GRIDS = [(8, 1, 1), (1, 8, 1), (2, 2, 2), (1, 1, 8)]


def _sthosvd_words_measured(grid):
    x = SymbolicArray((N, N, N), np.float32)
    _, stats = dist_sthosvd(x, grid, ranks=(R, R, R))
    led = stats.ledger
    llsv = (
        led.phases.get("gram_comm", None).words
        if "gram_comm" in led.phases
        else 0.0
    )
    llsv += (
        led.phases["redistribute_comm"].words
        if "redistribute_comm" in led.phases
        else 0.0
    )
    ttm = led.phases["ttm_comm"].words if "ttm_comm" in led.phases else 0.0
    return {"llsv": llsv, "ttm": ttm}


def _hooi_words_measured(grid, variant):
    x = SymbolicArray((N, N, N), np.float32)
    opts = variant_options(variant, max_iters=1)
    _, stats = dist_hooi(x, (R, R, R), grid, options=opts)
    led = stats.ledger

    def words(phase):
        return led.phases[phase].words if phase in led.phases else 0.0

    if variant.startswith("hosi"):
        llsv = words("subspace_comm")
    else:
        llsv = words("gram_comm") + words("redistribute_comm")
    return {"llsv": llsv, "ttm": words("ttm_comm")}


def test_table2_words(benchmark):
    rows = []

    def run():
        rows.clear()
        for grid in GRIDS:
            meas = _sthosvd_words_measured(grid)
            model = sthosvd_words(N, 3, R, grid)
            for term in ("llsv", "ttm"):
                rows.append(
                    ["sthosvd", grid, term, meas[term], model[term]]
                )
            for variant in ("hooi", "hosi-dt"):
                meas = _hooi_words_measured(grid, variant)
                model = hooi_iteration_words(
                    N, 3, R, grid,
                    dimension_tree=variant.endswith("-dt"),
                    subspace=variant.startswith("hosi"),
                )
                for term in ("llsv", "ttm"):
                    rows.append(
                        [variant, grid, term, meas[term], model[term]]
                    )

    benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "table2_words",
        format_table(
            ["algorithm", "grid", "term", "measured words", "model words"],
            rows,
            title=(
                "Table 2 reproduction: measured per-rank communicated "
                f"words vs paper's leading-order formulas (n={N}, r={R})"
            ),
        ),
    )
    # Shape check: across grids, the model's ranking predicts the
    # measured ranking (the model keeps only leading-order terms, so a
    # model of zero can still measure small lower-order traffic).
    by_key: dict[tuple[str, str], list[tuple[float, float]]] = {}
    for algo, grid, term, meas, model in rows:
        by_key.setdefault((algo, term), []).append((model, meas))
    for key, pairs in by_key.items():
        max_model = max(pairs, key=lambda mm: mm[0])
        max_meas = max(pairs, key=lambda mm: mm[1])
        if max_model[0] > 0:
            assert max_model[1] >= 0.5 * max_meas[1], key


def test_table2_grid_preferences(benchmark):
    """P_1=1 grids minimize STHOSVD comm; P_1=P_d=1 minimize DT comm."""

    def run():
        sth = {
            grid: sum(_sthosvd_words_measured(grid).values())
            for grid in GRIDS
        }
        dt = {
            grid: sum(_hooi_words_measured(grid, "hosi-dt").values())
            for grid in GRIDS
        }
        return sth, dt

    sth, dt = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "table2_grid_preferences",
        format_table(
            ["grid", "STHOSVD words", "HOSI-DT words"],
            [[g, sth[g], dt[g]] for g in GRIDS],
            title="Grid preference check (lower is better)",
        ),
    )
    best_sth = min(sth, key=sth.get)
    assert best_sth[0] == 1
    best_dt = min(dt, key=dt.get)
    assert best_dt[0] == 1 and best_dt[-1] == 1
