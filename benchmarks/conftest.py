"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Besides the pytest-benchmark
timing, every bench *prints* the regenerated rows/series and persists
them under ``results/`` so they can be inspected after a captured run
and are diffable across runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_dataset_experiment
from repro.datasets import hcci_like, miranda_like, sp_like


# ---------------------------------------------------------------------------
# session-scoped dataset experiments shared by the Fig. 4-9 benches
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def miranda_experiment():
    """Miranda-like 3-way study at 1024 simulated cores (Figs. 4-5)."""
    x = miranda_like(192, seed=0).astype("float64")
    return run_dataset_experiment("miranda", x, cores=1024, seed=0), x


@pytest.fixture(scope="session")
def hcci_experiment():
    """HCCI-like 4-way study at 128 simulated cores (Figs. 6-7)."""
    x = hcci_like((48, 48, 7, 32), seed=0)
    return run_dataset_experiment("hcci", x, cores=128, seed=0), x


@pytest.fixture(scope="session")
def sp_experiment():
    """SP-like 5-way study at 2048 simulated cores (Figs. 8-9)."""
    x = sp_like((28, 28, 28, 5, 20), seed=0)
    return run_dataset_experiment("sp", x, cores=2048, seed=0), x
