"""Figure 2 — strong scaling of the Tucker algorithms.

Regenerates both panels at the paper's full tensor dimensions (symbolic
mode: costs only, no 200 GB allocations):

* top: 3-way 3750^3, ranks 30^3, P = 1 ... 4096;
* bottom: 4-way 560^4, ranks 10^4, P = 1 ... 8192.

Asserted shapes (paper §4.1): STHOSVD plateaus on the 3-way tensor
(sequential EVD bottleneck) while the HOSI variants keep scaling;
Gram-based HOOI plateaus at ~2x STHOSVD; on the 4-way tensor STHOSVD
scales well and HOSI-DT is the fastest variant.
"""

from __future__ import annotations

from _util import save_result
from repro.analysis.reporting import format_series
from repro.analysis.scaling import strong_scaling

P3 = [2**k for k in range(0, 13)]  # 1 .. 4096
P4 = [2**k for k in range(0, 14)]  # 1 .. 8192


def _series(points):
    algos = sorted({p.algorithm for p in points})
    ps = sorted({p.p for p in points})
    table = {
        a: [
            next(pt.seconds for pt in points if pt.algorithm == a and pt.p == p)
            for p in ps
        ]
        for a in algos
    }
    return ps, table


def test_fig2_3way(benchmark):
    points = benchmark.pedantic(
        lambda: strong_scaling((3750, 3750, 3750), (30, 30, 30), P3),
        rounds=1,
        iterations=1,
    )
    ps, series = _series(points)
    save_result(
        "fig2_3way_scaling",
        format_series(
            "P",
            ps,
            series,
            title=(
                "Fig. 2 (top): simulated strong scaling, 3-way 3750^3, "
                "ranks 30^3 (seconds, best grid per algorithm)"
            ),
        ),
    )
    t = {(p.algorithm, p.p): p.seconds for p in points}
    # STHOSVD scales early then plateaus at the sequential EVD.
    assert t[("sthosvd", 1)] / t[("sthosvd", 64)] > 8
    assert t[("sthosvd", 64)] / t[("sthosvd", 4096)] < 10
    # HOSI-DT keeps scaling and wins big at 4096 cores (paper: 259x).
    assert t[("sthosvd", 4096)] / t[("hosi-dt", 4096)] > 50
    # Gram-based HOOI plateaus around 2x STHOSVD (two EVD sweeps).
    ratio = t[("hooi-dt", 4096)] / t[("sthosvd", 4096)]
    assert 1.5 < ratio < 3.0
    # HOSI-DT is the fastest variant at scale.
    fastest = min(series, key=lambda a: series[a][-1])
    assert fastest == "hosi-dt"


def test_fig2_4way(benchmark):
    points = benchmark.pedantic(
        lambda: strong_scaling((560, 560, 560, 560), (10, 10, 10, 10), P4),
        rounds=1,
        iterations=1,
    )
    ps, series = _series(points)
    save_result(
        "fig2_4way_scaling",
        format_series(
            "P",
            ps,
            series,
            title=(
                "Fig. 2 (bottom): simulated strong scaling, 4-way 560^4, "
                "ranks 10^4 (seconds, best grid per algorithm)"
            ),
        ),
    )
    t = {(p.algorithm, p.p): p.seconds for p in points}
    # STHOSVD scales well on the 4-way tensor (paper: 937x at 8192).
    assert t[("sthosvd", 1)] / t[("sthosvd", 8192)] > 100
    # HOSI-DT is fastest at the paper's comparison point.
    best = {
        a: min(series[a]) for a in series
    }
    assert best["hosi-dt"] <= min(best.values()) * 1.001
    # Paper: HOSI-DT ~1.5x over STHOSVD, ~2.9x over HOOI-DT (best times).
    assert best["sthosvd"] / best["hosi-dt"] > 1.1
    assert best["hooi-dt"] / best["hosi-dt"] > 1.5
