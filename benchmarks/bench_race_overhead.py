"""Race-sanitizer overhead on ``mp_hooi_dt``.

Times the dimension-tree HOOI sweep loop on real processes with
``CommConfig(race_detect=False)`` against ``race_detect=True`` — the
tier-2 happens-before race sanitizer armed: vector clocks ticked per
message, clock snapshots riding every ``_post``, shm segment
reads/writes checked, transport occupancy (SPMD223) guarded — on the
same worker set.  Per mode: a warm-up iteration, a barrier, then
``REPS`` timed iterations; the reported figure is the slowest rank's
per-iteration time, best of ``TRIALS`` launches.

Acceptance (non-smoke): race-detect overhead stays **below 10%** on
the guard shape.  The sanitizer's cost is a dict update and a small
clock copy per message — fixed per-message latency, invisible where
bandwidth and FLOPs dominate.  Plain/detect launches are *interleaved*
and each mode takes its best-of-trials, so slow scheduler phases on a
shared host cannot bias one mode.  Smoke mode (``MP_BENCH_SMOKE=1``,
the CI path) runs a tiny shape where that fixed latency IS the
runtime, so it only checks completion + bit-identity, not the ratio.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _util import save_json, save_result
from repro.analysis.reporting import format_table
from repro.core.dimension_tree import hooi_iteration_dt
from repro.distributed.layout import BlockLayout
from repro.distributed.mp_hooi import MPTreeEngine
from repro.tensor.random import random_orthonormal, tucker_plus_noise
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import CommConfig, ProcessComm, run_spmd

#: CI smoke mode: tiny tensor, one trial, no overhead-ratio assertion.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

SHAPE, RANKS, GRID = (224, 224, 224), (56, 56, 56), (2, 2, 1)
REPS = 3
TRIALS = 5
MAX_OVERHEAD = 0.10
if SMOKE:
    SHAPE, RANKS = (10, 10, 10), (3, 3, 3)
    REPS = 1
    TRIALS = 1


def _sweep_program(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
    reps: int,
) -> tuple[float, np.ndarray]:
    """Per-iteration seconds for the memoized HOOI sweep, plus the
    first factor after the timed reps (for the bit-identity check)."""
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    layout = BlockLayout(shape, grid)
    rng = np.random.default_rng(0)
    factors = [
        random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
    ]
    engine = MPTreeEngine(comm, coords, factors, ranks, memoize=True)
    state = (blocks[comm.rank], layout, ())

    hooi_iteration_dt(state, engine)  # warm-up
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(reps):
        hooi_iteration_dt(state, engine)
    dt = time.perf_counter() - t0
    return dt / reps, factors[0]


def _launch(
    blocks: list[np.ndarray], race_detect: bool
) -> tuple[float, np.ndarray]:
    """One ``run_spmd`` launch; slowest rank's per-iteration time."""
    outs = run_spmd(
        _sweep_program,
        len(blocks),
        blocks,
        tuple(GRID),
        tuple(SHAPE),
        tuple(RANKS),
        REPS,
        timeout=600.0,
        config=CommConfig(race_detect=race_detect),
    )
    return max(o[0] for o in outs), outs[0][1]


def test_race_overhead(benchmark):
    def run():
        grid = ProcessorGrid(GRID)
        layout = BlockLayout(SHAPE, grid)
        x = tucker_plus_noise(SHAPE, RANKS, noise=1e-3, seed=7)
        blocks = [
            np.ascontiguousarray(x[layout.local_slices(coords)])
            for _, coords in grid.iter_ranks()
        ]
        # Interleave modes so a slow phase of the host machine hits
        # both equally; best-of-trials per mode rejects the spikes.
        t_plain, t_detect = float("inf"), float("inf")
        f_plain = f_detect = None
        for _ in range(TRIALS):
            t, f_plain = _launch(blocks, race_detect=False)
            t_plain = min(t_plain, t)
            t, f_detect = _launch(blocks, race_detect=True)
            t_detect = min(t_detect, t)
        overhead = t_detect / t_plain - 1.0
        # Detection must never perturb the numbers, at any size.
        assert f_plain is not None and f_detect is not None
        assert np.array_equal(f_plain, f_detect)
        return t_plain, t_detect, overhead

    t_plain, t_detect, overhead = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_result(
        "race_overhead",
        format_table(
            ["shape", "grid", "plain ms", "detect ms", "overhead"],
            [
                [
                    "x".join(map(str, SHAPE)),
                    "x".join(map(str, GRID)),
                    t_plain * 1e3,
                    t_detect * 1e3,
                    f"{overhead * 100:.1f}%",
                ]
            ],
            title="mp_hooi_dt sweep: race_detect=True overhead "
            "(per iteration, slowest rank)",
        ),
    )
    save_json(
        "race_overhead",
        {
            "plain_seconds": t_plain,
            "detect_seconds": t_detect,
            "overhead_ratio": overhead,
        },
        params={
            "shape": list(SHAPE),
            "ranks": list(RANKS),
            "grid": list(GRID),
            "reps": REPS,
            "trials": TRIALS,
        },
    )
    if SMOKE:
        # Latency-bound toy shape: completing with bit-identical
        # factors is the acceptance; the ratio is meaningless here.
        return
    assert overhead < MAX_OVERHEAD, (
        f"race-detect overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )
