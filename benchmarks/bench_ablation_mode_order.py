"""Ablation — STHOSVD mode processing order.

The paper's datasets are strongly anisotropic (672x672x33x626,
500^3x11x400): the order in which STHOSVD truncates modes changes the
Gram costs by large factors.  This bench compares ascending order (the
default), the exchange-optimal heuristic of
:func:`repro.core.sthosvd.auto_mode_order`, and the worst order, on the
cost model at dataset-like shapes.
"""

from __future__ import annotations

import itertools

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.sthosvd import auto_mode_order
from repro.distributed.arrays import SymbolicArray
from repro.distributed.sthosvd import dist_sthosvd

CASES = [
    ("hcci-like", (672, 672, 33, 626), (20, 20, 8, 30)),
    ("sp-like", (500, 500, 500, 11, 400), (15, 15, 15, 5, 20)),
    ("cubic", (512, 512, 512), (16, 16, 16)),
]


def _flops(shape, ranks, order):
    x = SymbolicArray(shape, np.float32)
    _, stats = dist_sthosvd(x, (1,) * len(shape), ranks=ranks,
                            mode_order=order)
    return stats.ledger.total_flops()


def test_ablation_mode_order(benchmark):
    def run():
        rows, checks = [], {}
        for name, shape, ranks in CASES:
            auto = auto_mode_order(shape, ranks)
            f_asc = _flops(shape, ranks, None)
            f_auto = _flops(shape, ranks, auto)
            if len(shape) <= 4:
                f_worst = max(
                    _flops(shape, ranks, o)
                    for o in itertools.permutations(range(len(shape)))
                )
            else:
                f_worst = _flops(shape, ranks, auto[::-1])
            rows.append(
                [
                    name, str(auto), f_asc, f_auto, f_worst,
                    f_asc / f_auto, f_worst / f_auto,
                ]
            )
            checks[name] = (f_asc, f_auto, f_worst)
        return rows, checks

    rows, checks = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_mode_order",
        format_table(
            [
                "case", "auto order", "ascending flops", "auto flops",
                "worst flops", "asc/auto", "worst/auto",
            ],
            rows,
            title="Ablation: STHOSVD mode processing order (per-rank flops)",
        ),
    )
    for name, (f_asc, f_auto, f_worst) in checks.items():
        assert f_auto <= f_asc * 1.001, name
        assert f_auto <= f_worst, name
    # On the anisotropic datasets the ordering is a >2x effect.
    assert checks["hcci-like"][2] / checks["hcci-like"][1] > 2
