"""Table 1 — leading-order flop costs (measured vs closed form).

Sweeps cubic synthetic problems, reads the ledger's measured per-rank
flop counters for every algorithm/kernel choice, and tabulates them
against the paper's Table 1 formulas.  The assertion is *shape*, not
equality: the measured/analytic ratio must stay near-constant across
the sweep (the paper keeps only leading-order terms).
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import save_result
from repro.analysis.costs import hooi_iteration_flops, sthosvd_flops
from repro.analysis.reporting import format_table
from repro.core.hooi import variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd

SWEEP = [(64, 4), (128, 8), (256, 16)]
P, GRID = 8, (1, 4, 2)


def _measured_sthosvd(n: int, r: int):
    x = SymbolicArray((n, n, n), np.float32)
    _, stats = dist_sthosvd(x, GRID, ranks=(r, r, r))
    led = stats.ledger
    return {
        "gram": led.phases["gram"].flops,
        "evd": led.phases["evd"].seq_flops,
        "ttm": led.phases["ttm"].flops,
    }


def _measured_hooi(n: int, r: int, variant: str):
    x = SymbolicArray((n, n, n), np.float32)
    opts = variant_options(variant, max_iters=1)
    _, stats = dist_hooi(x, (r, r, r), GRID, options=opts)
    led = stats.ledger
    out = {"ttm": led.phases["ttm"].flops}
    if "gram" in led.phases:
        out["llsv"] = led.phases["gram"].flops
        out["llsv_seq"] = led.phases["evd"].seq_flops
    else:
        out["llsv"] = led.phases["subspace"].flops
        out["llsv_seq"] = led.phases["qrcp"].seq_flops
    return out


def test_table1_flops(benchmark):
    rows = []
    ratio_sets: dict[str, list[float]] = {}

    def run():
        rows.clear()
        for n, r in SWEEP:
            meas = _measured_sthosvd(n, r)
            model = sthosvd_flops(n, 3, r, P)
            for term in ("gram", "evd", "ttm"):
                ratio = meas[term] / model[term]
                rows.append(
                    ["sthosvd", n, r, term, meas[term], model[term], ratio]
                )
                ratio_sets.setdefault(f"sthosvd/{term}", []).append(ratio)
            for variant in ("hooi", "hooi-dt", "hosi", "hosi-dt"):
                meas = _measured_hooi(n, r, variant)
                model = hooi_iteration_flops(
                    n, 3, r, P,
                    dimension_tree=variant.endswith("-dt"),
                    subspace=variant.startswith("hosi"),
                )
                for term in ("ttm", "llsv", "llsv_seq"):
                    ratio = meas[term] / model[term]
                    rows.append(
                        [variant, n, r, term, meas[term], model[term], ratio]
                    )
                    ratio_sets.setdefault(f"{variant}/{term}", []).append(
                        ratio
                    )

    benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "table1_flops",
        format_table(
            ["algorithm", "n", "r", "term", "measured", "model", "ratio"],
            rows,
            title=(
                "Table 1 reproduction: measured per-rank flops vs paper's "
                f"leading-order formulas (P={P}, grid={GRID})"
            ),
        ),
    )
    # Shape check: ratios stable across the sweep for every term.
    for key, ratios in ratio_sets.items():
        spread = max(ratios) / min(ratios)
        assert spread < 2.0, f"{key}: ratio spread {spread:.2f}"


def test_table1_dt_speedup_factor(benchmark):
    """DT reduces per-iteration TTM flops by ~d/2 (paper §3.3)."""

    def run():
        out = {}
        for d, n, r in ((3, 64, 4), (4, 32, 4), (6, 12, 2)):
            shape, ranks = (n,) * d, (r,) * d
            grid = (1,) * d
            x = SymbolicArray(shape, np.float32)
            flops = {}
            for variant in ("hooi", "hooi-dt"):
                opts = variant_options(variant, max_iters=1)
                _, stats = dist_hooi(x, ranks, grid, options=opts)
                flops[variant] = stats.ledger.phases["ttm"].flops
            out[d] = flops["hooi"] / flops["hooi-dt"]
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "table1_dt_factor",
        format_table(
            ["d", "direct/DT TTM flop ratio", "paper model (d/2)"],
            [[d, ratio, d / 2] for d, ratio in ratios.items()],
            title="Dimension-tree memoization factor",
        ),
    )
    for d, ratio in ratios.items():
        assert ratio == pytest.approx(d / 2, rel=0.45)
