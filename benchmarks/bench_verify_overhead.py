"""Verify-mode overhead on ``mp_hooi_dt``.

Times the dimension-tree HOOI sweep loop on real processes with
``CommConfig(verify=False)`` against ``verify=True`` — the tier-2
collective-matching verifier, wait-for deadlock monitor, and shm
sanitizer all armed — on the same worker set.  Per mode: a warm-up
iteration (builds segment pools, faults in buffers), a barrier, then
``REPS`` timed iterations; the reported figure is the slowest rank's
per-iteration time, best of ``TRIALS`` launches.

Acceptance (non-smoke): verify overhead stays **below 10%** on the
guard shape.  The verifier's control round is a handful of sub-KB
queue messages per collective, so its cost is a fixed per-collective
latency — on the paper-scale shapes where bandwidth and FLOPs
dominate, it vanishes; the guard shape is sized so compute dominates
the same way.  Plain/verify launches are *interleaved* and each mode
takes its best-of-trials, so slow scheduler phases on a shared host
cannot bias one mode.  Smoke mode (``MP_BENCH_SMOKE=1``, the CI
path) runs a tiny shape where that fixed latency IS the runtime, so
it only checks completion + bit-identity, not the ratio.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _util import save_json, save_result
from repro.analysis.reporting import format_table
from repro.core.dimension_tree import hooi_iteration_dt
from repro.distributed.layout import BlockLayout
from repro.distributed.mp_hooi import MPTreeEngine
from repro.tensor.random import random_orthonormal, tucker_plus_noise
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import CommConfig, ProcessComm, run_spmd

#: CI smoke mode: tiny tensor, one trial, no overhead-ratio assertion.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

SHAPE, RANKS, GRID = (224, 224, 224), (56, 56, 56), (2, 2, 1)
REPS = 3
TRIALS = 5
MAX_OVERHEAD = 0.10
if SMOKE:
    SHAPE, RANKS = (10, 10, 10), (3, 3, 3)
    REPS = 1
    TRIALS = 1


def _sweep_program(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
    reps: int,
) -> tuple[float, np.ndarray]:
    """Per-iteration seconds for the memoized HOOI sweep, plus the
    first factor after the timed reps (for the bit-identity check)."""
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    layout = BlockLayout(shape, grid)
    rng = np.random.default_rng(0)
    factors = [
        random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
    ]
    engine = MPTreeEngine(comm, coords, factors, ranks, memoize=True)
    state = (blocks[comm.rank], layout, ())

    hooi_iteration_dt(state, engine)  # warm-up
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(reps):
        hooi_iteration_dt(state, engine)
    dt = time.perf_counter() - t0
    return dt / reps, factors[0]


def _launch(
    blocks: list[np.ndarray], verify: bool
) -> tuple[float, np.ndarray]:
    """One ``run_spmd`` launch; slowest rank's per-iteration time."""
    outs = run_spmd(
        _sweep_program,
        len(blocks),
        blocks,
        tuple(GRID),
        tuple(SHAPE),
        tuple(RANKS),
        REPS,
        timeout=600.0,
        config=CommConfig(verify=verify),
    )
    return max(o[0] for o in outs), outs[0][1]


def test_verify_overhead(benchmark):
    def run():
        grid = ProcessorGrid(GRID)
        layout = BlockLayout(SHAPE, grid)
        x = tucker_plus_noise(SHAPE, RANKS, noise=1e-3, seed=7)
        blocks = [
            np.ascontiguousarray(x[layout.local_slices(coords)])
            for _, coords in grid.iter_ranks()
        ]
        # Interleave modes so a slow phase of the host machine hits
        # both equally; best-of-trials per mode rejects the spikes.
        t_plain, t_verify = float("inf"), float("inf")
        f_plain = f_verify = None
        for _ in range(TRIALS):
            t, f_plain = _launch(blocks, verify=False)
            t_plain = min(t_plain, t)
            t, f_verify = _launch(blocks, verify=True)
            t_verify = min(t_verify, t)
        overhead = t_verify / t_plain - 1.0
        # Verify mode must never perturb the numbers, at any size.
        assert f_plain is not None and f_verify is not None
        assert np.array_equal(f_plain, f_verify)
        return t_plain, t_verify, overhead

    t_plain, t_verify, overhead = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_result(
        "verify_overhead",
        format_table(
            ["shape", "grid", "plain ms", "verify ms", "overhead"],
            [
                [
                    "x".join(map(str, SHAPE)),
                    "x".join(map(str, GRID)),
                    t_plain * 1e3,
                    t_verify * 1e3,
                    f"{overhead * 100:.1f}%",
                ]
            ],
            title="mp_hooi_dt sweep: verify=True overhead "
            "(per iteration, slowest rank)",
        ),
    )
    save_json(
        "verify_overhead",
        {
            "plain_seconds": t_plain,
            "verify_seconds": t_verify,
            "overhead_ratio": overhead,
        },
        params={
            "shape": list(SHAPE),
            "ranks": list(RANKS),
            "grid": list(GRID),
            "reps": REPS,
            "trials": TRIALS,
        },
    )
    if SMOKE:
        # Latency-bound toy shape: completing with bit-identical
        # factors is the acceptance; the ratio is meaningless here.
        return
    assert overhead < MAX_OVERHEAD, (
        f"verify overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )
