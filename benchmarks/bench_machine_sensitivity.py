"""Machine-model sensitivity of the paper's conclusions.

The simulator's constants are calibrations, not measurements, so the
reproduced claims should be *robust* to them.  This bench re-runs the
headline Fig. 2 comparison (3-way, paper dims, large P) on three very
different machine models and asserts the qualitative conclusions —
HOSI-DT wins at scale, STHOSVD EVD-plateaus, Gram-HOOI ~2x STHOSVD —
hold on all of them, while the *magnitudes* shift as expected.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.analysis.scaling import strong_scaling
from repro.vmpi.machine import fat_node_like, laptop_like, perlmutter_like

MACHINES = {
    "perlmutter-like": perlmutter_like(),
    "laptop-like": laptop_like(),
    "fat-node-like": fat_node_like(),
}


def test_machine_sensitivity(benchmark):
    def run():
        rows, wins = [], {}
        for name, machine in MACHINES.items():
            # Laptop "scale" is bounded; use a smaller P there.
            p = 64 if name == "laptop-like" else 4096
            pts = strong_scaling(
                (3750, 3750, 3750),
                (30, 30, 30),
                [p],
                algorithms=("sthosvd", "hooi-dt", "hosi-dt"),
                machine=machine,
            )
            t = {pt.algorithm: pt.seconds for pt in pts}
            rows.append(
                [
                    name, p, t["sthosvd"], t["hooi-dt"], t["hosi-dt"],
                    t["sthosvd"] / t["hosi-dt"],
                ]
            )
            wins[name] = t
        return rows, wins

    rows, wins = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "machine_sensitivity",
        format_table(
            [
                "machine", "P", "sthosvd s", "hooi-dt s", "hosi-dt s",
                "sthosvd/hosi-dt",
            ],
            rows,
            title=(
                "Machine-model sensitivity: 3-way 3750^3 ranks 30^3 at "
                "scale"
            ),
        ),
    )
    for name, t in wins.items():
        # The winner is invariant across machine models.
        assert t["hosi-dt"] < t["sthosvd"], name
        assert t["hosi-dt"] < t["hooi-dt"], name
    # The magnitude of the win varies with the compute/EVD balance.
    factors = sorted(
        t["sthosvd"] / t["hosi-dt"] for t in wins.values()
    )
    assert factors[-1] / factors[0] > 1.5
