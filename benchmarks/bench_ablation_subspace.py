"""Ablation — subspace-iteration sweep count (paper §3.4).

The paper runs a *single* sweep per subiteration, arguing the previous
iteration's factor is an accurate enough start.  This bench measures
what extra sweeps buy (accuracy after one HOOI iteration) and what they
cost (simulated time), justifying the paper's choice.
"""

from __future__ import annotations

import numpy as np

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.hooi import HOOIOptions, hooi
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.tensor.random import tucker_plus_noise

SWEEPS = (1, 2, 4)


def test_ablation_subspace_sweeps(benchmark):
    x = tucker_plus_noise((48, 44, 40), (6, 6, 6), noise=1e-3, seed=0)
    xsym = SymbolicArray((512, 512, 512), np.float32)

    def run():
        rows = []
        errs, costs = {}, {}
        for s in SWEEPS:
            # Accuracy: error after two HOOI iterations.
            opts = HOOIOptions(
                max_iters=2, n_subspace_iters=s, seed=1
            )
            _, stats = hooi(x, (6, 6, 6), opts)
            errs[s] = stats.errors[-1]
            # Cost: simulated seconds at scale.
            opts_d = HOOIOptions(max_iters=2, n_subspace_iters=s)
            _, dstats = dist_hooi(
                xsym, (8, 8, 8), (1, 16, 16), options=opts_d
            )
            costs[s] = dstats.simulated_seconds
            rows.append([s, errs[s], costs[s]])
        return rows, errs, costs

    rows, errs, costs = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_subspace_sweeps",
        format_table(
            ["sweeps", "rel error after 2 iters", "sim seconds (512^3)"],
            rows,
            title="Ablation: subspace-iteration sweeps per subiteration",
        ),
    )
    # One sweep is already accurate (paper's point): extra sweeps
    # improve the error by less than 1% relative...
    assert errs[4] <= errs[1] + 1e-12
    assert (errs[1] - errs[4]) <= 0.01 * errs[1] + 1e-12
    # ...while the LLSV cost grows with the sweep count.
    assert costs[4] > costs[2] > costs[1]
