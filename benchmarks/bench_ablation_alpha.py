"""Ablation — the rank growth factor alpha (paper: "typically 1.5 or 2").

From an undershot start, small alpha needs more iterations to reach a
feasible rank; large alpha overshoots harder (bigger iterations, more
truncation slack).  This bench maps that trade-off.
"""

from __future__ import annotations

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.rank_adaptive import RankAdaptiveOptions, rank_adaptive_hooi
from repro.tensor.random import tucker_plus_noise

ALPHAS = (1.25, 1.5, 2.0, 3.0)


def test_ablation_alpha(benchmark):
    x = tucker_plus_noise((36, 36, 36), (9, 9, 9), noise=0.01, seed=0)
    eps = 0.05
    start = (3, 3, 3)  # strong underestimate

    def run():
        rows, firsts = [], {}
        for alpha in ALPHAS:
            tucker, stats = rank_adaptive_hooi(
                x, eps, start,
                RankAdaptiveOptions(
                    alpha=alpha, max_iters=8, stop_at_threshold=True
                ),
            )
            assert stats.converged, alpha
            peak = max(
                max(rec.ranks_used) for rec in stats.history
            )
            rows.append(
                [
                    alpha, stats.first_satisfied, peak,
                    str(tucker.ranks), tucker.storage_size(),
                ]
            )
            firsts[alpha] = stats.first_satisfied
        return rows, firsts

    rows, firsts = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_alpha",
        format_table(
            [
                "alpha", "iters to threshold", "peak rank",
                "final ranks", "storage",
            ],
            rows,
            title=(
                "Ablation: rank growth factor alpha "
                "(undershot start (3,3,3) -> true ranks (9,9,9))"
            ),
        ),
    )
    # Larger alpha reaches a feasible rank in no more iterations.
    assert firsts[3.0] <= firsts[1.5] <= firsts[1.25]
