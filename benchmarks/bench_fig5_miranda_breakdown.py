"""Figure 5 — Miranda: running-time breakdown per compression level.

Stacks per-phase simulated time of STHOSVD and of RA-HOSI-DT (until the
threshold is reached) for each tolerance.  Asserted shape: STHOSVD is
Gram/EVD-heavy, RA-HOSI-DT is TTM-heavy with negligible core-analysis
cost at high compression (paper: core analysis becomes visible only in
the low-compression regime).
"""

from __future__ import annotations

from _dataset_figs import breakdown_table
from _util import save_result
from repro.analysis.breakdown import group_breakdown


def test_fig5_miranda_breakdown(benchmark, miranda_experiment):
    exp, _ = miranda_experiment
    table = benchmark.pedantic(
        lambda: breakdown_table(exp), rounds=1, iterations=1
    )
    save_result("fig5_miranda_breakdown", table)

    base = group_breakdown(exp.baselines[0.1].breakdown)
    assert base["Gram"] + base.get("EVD", 0.0) > base.get("TTM", 0.0)

    run = exp.adaptive_for(0.1, "perfect")
    upto = run.stats.first_satisfied
    merged: dict[str, float] = {}
    for b in run.stats.iteration_breakdowns[:upto]:
        for k, v in b.items():
            merged[k] = merged.get(k, 0.0) + v
    ra = group_breakdown(merged)
    assert ra["TTM"] > ra.get("QRCP", 0.0)
    # Core analysis is negligible at high compression (paper §4.2.1).
    total = sum(ra.values())
    assert ra.get("Core analysis", 0.0) < 0.15 * total
