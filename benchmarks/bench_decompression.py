"""Subtensor decompression — the Tucker format's practical advantage.

The paper's introduction motivates Tucker compression with fast
visualization: "subtensors can be efficiently decompressed without
reconstructing the full tensor."  This bench measures exactly that on
real wall-clock: extracting a single time slab / spatial region vs a
full reconstruction.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.sthosvd import sthosvd
from repro.datasets import miranda_like


@pytest.fixture(scope="module")
def compressed():
    x = miranda_like(96, seed=0).astype(np.float64)
    tucker, _ = sthosvd(x, eps=0.05)
    return x, tucker


def test_bench_full_reconstruction(benchmark, compressed):
    _, tucker = compressed
    benchmark(tucker.reconstruct)


def test_bench_slab_extraction(benchmark, compressed):
    _, tucker = compressed
    region = (slice(40, 44), slice(None), slice(None))
    benchmark(tucker.extract_subtensor, region)


def test_decompression_speedup_table(benchmark, compressed):
    x, tucker = compressed

    def run():
        rows = []
        regions = {
            "full tensor": tuple(slice(None) for _ in range(3)),
            "4-slab (x)": (slice(40, 44), slice(None), slice(None)),
            "32^3 region": (slice(0, 32),) * 3,
            "single fiber": (
                slice(0, 96), slice(10, 11), slice(20, 21),
            ),
        }
        for label, region in regions.items():
            t0 = time.perf_counter()
            for _ in range(5):
                block = tucker.extract_subtensor(region)
            dt = (time.perf_counter() - t0) / 5
            rows.append([label, str(block.shape), dt * 1e3])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "decompression",
        format_table(
            ["region", "shape", "wall ms"],
            rows,
            title=(
                "Region decompression without full reconstruction "
                "(96^3 Miranda surrogate, eps=0.05)"
            ),
        ),
    )
    times = {r[0]: r[2] for r in rows}
    # Partial extraction is much cheaper than full reconstruction.
    assert times["single fiber"] < times["full tensor"] / 5
    assert times["32^3 region"] < times["full tensor"]
