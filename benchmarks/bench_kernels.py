"""Kernel microbenchmarks (real wall-clock, pytest-benchmark).

Supports the paper's §3.3-§3.4 claims with *measured* sequential kernel
times on this machine: dimension-tree vs direct multi-TTM, subspace
iteration vs Gram+EVD LLSV, and the QRCP implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dimension_tree import (
    SequentialTreeEngine,
    hooi_iteration_direct,
    hooi_iteration_dt,
)
from repro.linalg.llsv import LLSVMethod, llsv
from repro.linalg.qrcp import householder_qrcp, qrcp
from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.ops import gram, multi_ttm, ttm
from repro.tensor.random import random_orthonormal, tucker_plus_noise

N4, R4 = 36, 4
SHAPE4 = (N4,) * 4
RANKS4 = (R4,) * 4


@pytest.fixture(scope="module")
def x4():
    return tucker_plus_noise(SHAPE4, RANKS4, noise=1e-4, seed=0)


@pytest.fixture(scope="module")
def factors4(x4):
    rng = np.random.default_rng(1)
    return [
        random_orthonormal(n, r, seed=rng)
        for n, r in zip(SHAPE4, RANKS4)
    ]


def test_bench_single_ttm(benchmark, x4, factors4):
    benchmark(ttm, x4, factors4[0], 0, transpose=True)


def test_bench_multi_ttm(benchmark, x4, factors4):
    benchmark(multi_ttm, x4, factors4, transpose=True, skip=0)


def test_bench_gram(benchmark, x4):
    benchmark(gram, x4, 0)


def test_bench_gram_evd_llsv(benchmark, x4):
    benchmark(
        llsv, x4, 0, rank=R4, method=LLSVMethod.GRAM_EVD
    )


def test_bench_subspace_llsv(benchmark, x4, factors4):
    benchmark(
        subspace_iteration_llsv, x4, 0, factors4[0], R4
    )


def test_bench_hooi_iteration_direct(benchmark, x4, factors4):
    def run():
        fs = [u.copy() for u in factors4]
        return hooi_iteration_direct(
            x4, fs, RANKS4, llsv_method=LLSVMethod.SUBSPACE
        )

    benchmark(run)


def test_bench_hooi_iteration_dt(benchmark, x4, factors4):
    def run():
        engine = SequentialTreeEngine(
            [u.copy() for u in factors4], RANKS4,
            llsv_method=LLSVMethod.SUBSPACE,
        )
        hooi_iteration_dt(x4, engine)
        return engine.core

    benchmark(run)


def test_bench_qrcp_lapack(benchmark):
    rng = np.random.default_rng(2)
    a = rng.standard_normal((2000, 30))
    benchmark(qrcp, a, method="lapack")


def test_bench_qrcp_householder(benchmark):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((500, 20))
    benchmark(householder_qrcp, a)


def test_dt_beats_direct_wallclock(benchmark, x4, factors4):
    """Measured: the memoized iteration is faster than the direct one
    (the wall-clock counterpart of the Table 1 d/2 factor)."""
    import time

    def run():
        t0 = time.perf_counter()
        fs = [u.copy() for u in factors4]
        hooi_iteration_direct(
            x4, fs, RANKS4, llsv_method=LLSVMethod.SUBSPACE
        )
        t_direct = time.perf_counter() - t0

        t0 = time.perf_counter()
        engine = SequentialTreeEngine(
            [u.copy() for u in factors4], RANKS4,
            llsv_method=LLSVMethod.SUBSPACE,
        )
        hooi_iteration_dt(x4, engine)
        t_dt = time.perf_counter() - t0
        return t_direct, t_dt

    # Median of repeated trials to de-noise the comparison.
    trials = [run() for _ in range(5)]
    benchmark.pedantic(run, rounds=1, iterations=1)
    t_direct = sorted(t for t, _ in trials)[2]
    t_dt = sorted(t for _, t in trials)[2]
    assert t_dt < t_direct * 1.1
