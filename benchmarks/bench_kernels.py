"""Kernel microbenchmarks (real wall-clock, pytest-benchmark).

Supports the paper's §3.3-§3.4 claims with *measured* sequential kernel
times on this machine: dimension-tree vs direct multi-TTM, subspace
iteration vs Gram+EVD LLSV, and the QRCP implementations — plus the
``repro.kernels`` reshape-GEMM-reshape paths against the historical
tensordot/unfold implementations on the paper-scale 224^3 guard shape.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _util import save_result
from repro.analysis.reporting import format_table
from repro.core.dimension_tree import (
    SequentialTreeEngine,
    hooi_iteration_direct,
    hooi_iteration_dt,
)
from repro.kernels import gemm
from repro.linalg.llsv import LLSVMethod, llsv
from repro.linalg.qrcp import householder_qrcp, qrcp
from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.ops import gram, multi_ttm, ttm
from repro.tensor.random import random_orthonormal, tucker_plus_noise

#: CI smoke mode: tiny tensor, parity checks only, no speedup gate.
SMOKE = os.environ.get("MP_BENCH_SMOKE", "") == "1"

N4, R4 = 36, 4
SHAPE4 = (N4,) * 4
RANKS4 = (R4,) * 4


@pytest.fixture(scope="module")
def x4():
    return tucker_plus_noise(SHAPE4, RANKS4, noise=1e-4, seed=0)


@pytest.fixture(scope="module")
def factors4(x4):
    rng = np.random.default_rng(1)
    return [
        random_orthonormal(n, r, seed=rng)
        for n, r in zip(SHAPE4, RANKS4)
    ]


def test_bench_single_ttm(benchmark, x4, factors4):
    benchmark(ttm, x4, factors4[0], 0, transpose=True)


def test_bench_multi_ttm(benchmark, x4, factors4):
    benchmark(multi_ttm, x4, factors4, transpose=True, skip=0)


def test_bench_gram(benchmark, x4):
    benchmark(gram, x4, 0)


def test_bench_gram_evd_llsv(benchmark, x4):
    benchmark(
        llsv, x4, 0, rank=R4, method=LLSVMethod.GRAM_EVD
    )


def test_bench_subspace_llsv(benchmark, x4, factors4):
    benchmark(
        subspace_iteration_llsv, x4, 0, factors4[0], R4
    )


def test_bench_hooi_iteration_direct(benchmark, x4, factors4):
    def run():
        fs = [u.copy() for u in factors4]
        return hooi_iteration_direct(
            x4, fs, RANKS4, llsv_method=LLSVMethod.SUBSPACE
        )

    benchmark(run)


def test_bench_hooi_iteration_dt(benchmark, x4, factors4):
    def run():
        engine = SequentialTreeEngine(
            [u.copy() for u in factors4], RANKS4,
            llsv_method=LLSVMethod.SUBSPACE,
        )
        hooi_iteration_dt(x4, engine)
        return engine.core

    benchmark(run)


def test_bench_qrcp_lapack(benchmark):
    rng = np.random.default_rng(2)
    a = rng.standard_normal((2000, 30))
    benchmark(qrcp, a, method="lapack")


def test_bench_qrcp_householder(benchmark):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((500, 20))
    benchmark(householder_qrcp, a)


def test_dt_beats_direct_wallclock(benchmark, x4, factors4):
    """Measured: the memoized iteration is faster than the direct one
    (the wall-clock counterpart of the Table 1 d/2 factor)."""
    import time

    def run():
        t0 = time.perf_counter()
        fs = [u.copy() for u in factors4]
        hooi_iteration_direct(
            x4, fs, RANKS4, llsv_method=LLSVMethod.SUBSPACE
        )
        t_direct = time.perf_counter() - t0

        t0 = time.perf_counter()
        engine = SequentialTreeEngine(
            [u.copy() for u in factors4], RANKS4,
            llsv_method=LLSVMethod.SUBSPACE,
        )
        hooi_iteration_dt(x4, engine)
        t_dt = time.perf_counter() - t0
        return t_direct, t_dt

    # Median of repeated trials to de-noise the comparison.
    trials = [run() for _ in range(5)]
    benchmark.pedantic(run, rounds=1, iterations=1)
    t_direct = sorted(t for t, _ in trials)[2]
    t_dt = sorted(t for _, t in trials)[2]
    assert t_dt < t_direct * 1.1


# ---------------------------------------------------------------------------
# repro.kernels vs the historical tensordot/unfold implementations
# ---------------------------------------------------------------------------

KSHAPE, KRANK = (224, 224, 224), 56
KREPS = 3
# Per-op gates on the *sum over modes* (the quantity a sweep pays).
# The per-mode picture is lumpier: interior-mode TTM and every Gram
# mode win big (no transpose pack / no F-order unfold copy), while the
# boundary-mode TTM references can edge ahead by handing back a
# non-contiguous moveaxis view whose repack cost lands on the *next*
# kernel of the chain — a cost this microbenchmark cannot see but the
# sweep still pays.
MIN_TTM_SPEEDUP = 1.05
MIN_GRAM_SPEEDUP = 1.30
if SMOKE:
    KSHAPE, KRANK = (18, 18, 18), 6
    KREPS = 1


def _best(fn, *args):
    ts = []
    out = None
    for _ in range(KREPS):
        t0 = time.perf_counter()
        out = fn(*args)
        ts.append(time.perf_counter() - t0)
    return min(ts), out


def test_kernels_vs_tensordot(benchmark):
    """The tentpole hot-path claim, measured: the contiguous
    reshape-GEMM-reshape kernels beat the tensordot TTM and the
    F-order-unfold Gram on the 224^3 guard shape, at tight numerical
    agreement.  Smoke mode checks parity and completion only."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(KSHAPE)
    u = rng.standard_normal((KRANK, KSHAPE[0]))

    def run():
        rows = []
        totals = {"ttm": [0.0, 0.0], "gram": [0.0, 0.0]}
        for mode in range(3):
            t_new, y_new = _best(gemm.ttm_apply, x, u, mode)
            t_ref, y_ref = _best(gemm.ttm_reference, x, u, mode)
            np.testing.assert_allclose(y_new, y_ref, rtol=1e-10, atol=1e-12)
            totals["ttm"][0] += t_new
            totals["ttm"][1] += t_ref
            rows.append(["ttm", mode, t_new * 1e3, t_ref * 1e3,
                         f"{t_ref / t_new:.2f}x"])
        for mode in range(3):
            t_new, g_new = _best(gemm.gram_apply, x, mode)
            t_ref, g_ref = _best(gemm.gram_reference, x, mode)
            np.testing.assert_allclose(g_new, g_ref, rtol=1e-10, atol=1e-12)
            totals["gram"][0] += t_new
            totals["gram"][1] += t_ref
            rows.append(["gram", mode, t_new * 1e3, t_ref * 1e3,
                         f"{t_ref / t_new:.2f}x"])
        for op, (t_new, t_ref) in totals.items():
            rows.append([op, "all", t_new * 1e3, t_ref * 1e3,
                         f"{t_ref / t_new:.2f}x"])
        return rows, totals

    rows, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "kernels_speedup",
        format_table(
            ["op", "mode", "kernels ms", "tensordot/unfold ms", "speedup"],
            rows,
            title=f"repro.kernels vs historical kernels on "
            f"{'x'.join(map(str, KSHAPE))}, r={KRANK} "
            f"(best of {KREPS})",
        ),
    )
    if SMOKE:
        return
    ttm_speedup = totals["ttm"][1] / totals["ttm"][0]
    gram_speedup = totals["gram"][1] / totals["gram"][0]
    assert ttm_speedup >= MIN_TTM_SPEEDUP, (
        f"TTM speedup {ttm_speedup:.2f}x below {MIN_TTM_SPEEDUP}x"
    )
    assert gram_speedup >= MIN_GRAM_SPEEDUP, (
        f"Gram speedup {gram_speedup:.2f}x below {MIN_GRAM_SPEEDUP}x"
    )
