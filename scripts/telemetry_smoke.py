#!/usr/bin/env python
"""CI telemetry smoke: live monitoring plus a forced-deadlock postmortem.

Run once per backend (``--backend shm`` / ``--backend tcp``):

1. **Monitored sweep** — a small ``mp_hooi_dt`` run on 4 processes
   with a :class:`TelemetryMonitor` attached: heartbeats must arrive
   from every rank, every rank must finish ``ok``, and the JSONL
   export must validate against telemetry schema v1.
2. **Forced deadlock** — a seeded divergence (one rank exits a
   collective early): the raised ``RankFailureError`` must carry a
   merged causal postmortem naming the diverging rank and the
   collective it skipped, the flight-recorder tails must appear in the
   error message, and the monitor must log the ``postmortem`` record.

Artifacts (``telemetry-<backend>.jsonl``, ``postmortem-<backend>.txt``)
are written to ``--out-dir`` for upload.  Exits non-zero on any
violated expectation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.hooi import HOOIOptions
from repro.distributed.mp_hooi import mp_hooi_dt
from repro.observability.telemetry import (
    TelemetryMonitor,
    validate_telemetry_jsonl,
)
from repro.tensor.random import tucker_plus_noise
from repro.vmpi.mp_comm import CommConfig, RankFailureError, run_spmd

SIZE = 4
GRID = (2, 2, 1)
SHAPE, RANKS = (16, 14, 12), (4, 4, 3)


def _deadlock_program(comm):
    """Rank 1 skips the second allreduce: ranks {0, 2, 3} hang at op #2."""
    comm.phase = "gram"
    comm.allreduce(np.ones(2))
    if comm.rank == 1:
        return "early"
    comm.allreduce(np.ones(2))
    return "late"


def _check(ok: bool, what: str) -> None:
    if not ok:
        raise SystemExit(f"telemetry smoke FAILED: {what}")


def monitored_sweep(backend: str, out_dir: Path) -> None:
    mon = TelemetryMonitor(stall_after=30.0)
    x = tucker_plus_noise(SHAPE, RANKS, noise=1e-4, seed=0)
    cfg = CommConfig(telemetry_interval=0.1)
    mp_hooi_dt(
        x,
        RANKS,
        GRID,
        HOOIOptions(max_iters=2, seed=0),
        comm_config=cfg,
        transport=backend,
        monitor=mon,
    )
    path = out_dir / f"telemetry-{backend}.jsonl"
    mon.write_jsonl(str(path))
    counts = validate_telemetry_jsonl(path.read_text().splitlines())
    _check(counts.get("run") == 1, f"expected 1 run record: {counts}")
    _check(
        counts.get("final") == SIZE,
        f"expected {SIZE} final records: {counts}",
    )
    _check(counts.get("heartbeat", 0) >= SIZE, f"too few heartbeats: {counts}")
    _check(
        all(status == "ok" for status in mon.done.values()),
        f"non-ok finals: {mon.done}",
    )
    view = mon.render()
    _check("done(ok)" in view, "render missing finished ranks")
    print(f"[{backend}] monitored sweep OK: {counts}")
    print(view)


def forced_deadlock(backend: str, out_dir: Path) -> None:
    mon = TelemetryMonitor(stall_after=30.0)
    try:
        run_spmd(
            _deadlock_program,
            SIZE,
            timeout=60.0,
            transport=backend,
            collective_timeout=3.0,
            config=CommConfig(telemetry_interval=0.1),
            monitor=mon,
        )
    except RankFailureError as exc:
        pm = exc.postmortem
        _check(pm is not None, "RankFailureError carried no postmortem")
        (out_dir / f"postmortem-{backend}.txt").write_text(
            pm.render() + "\n"
        )
        _check(pm.diverging == [1], f"diverging {pm.diverging} != [1]")
        _check(
            pm.collective == "allreduce" and pm.op_id == 2,
            f"collective {pm.collective!r} op {pm.op_id} != allreduce #2",
        )
        _check(
            "rank(s) [1] completed" in pm.verdict,
            f"unexpected verdict: {pm.verdict}",
        )
        _check(
            "flight recorder (last" in str(exc),
            "flight tails missing from error message",
        )
        counts = validate_telemetry_jsonl(mon.jsonl())
        _check(
            counts.get("postmortem") == 1,
            f"monitor missing postmortem record: {counts}",
        )
        print(f"[{backend}] forced deadlock OK: {pm.verdict}")
        return
    raise SystemExit(
        "telemetry smoke FAILED: seeded deadlock did not raise"
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", choices=["shm", "tcp"], default="shm")
    ap.add_argument("--out-dir", default=".")
    args = ap.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    monitored_sweep(args.backend, out_dir)
    forced_deadlock(args.backend, out_dir)
    print(f"telemetry smoke OK on {args.backend}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
