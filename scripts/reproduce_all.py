"""One-shot reproduction driver.

Runs the full benchmark harness (every table, figure, and ablation),
collects the regenerated outputs from ``results/``, and prints a final
summary with pass/fail per experiment.  Equivalent to::

    pytest benchmarks/ --benchmark-only

but with a compact end-of-run index.

Run:  python scripts/reproduce_all.py
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

EXPERIMENTS = {
    "table1_flops": "Table 1 (flops, measured vs model)",
    "table1_dt_factor": "Table 1 (dimension-tree d/2 factor)",
    "table2_words": "Table 2 (communication words)",
    "table2_grid_preferences": "Table 2 (grid preferences)",
    "fig2_3way_scaling": "Fig. 2 top (3-way strong scaling)",
    "fig2_4way_scaling": "Fig. 2 bottom (4-way strong scaling)",
    "fig3_3way_breakdown": "Fig. 3 top (3-way breakdown)",
    "fig3_4way_breakdown": "Fig. 3 bottom (4-way breakdown)",
    "fig4_miranda_progression": "Fig. 4 (Miranda progression)",
    "fig5_miranda_breakdown": "Fig. 5 (Miranda breakdown)",
    "fig6_hcci_progression": "Fig. 6 (HCCI progression)",
    "fig7_hcci_breakdown": "Fig. 7 (HCCI breakdown)",
    "fig8_sp_progression": "Fig. 8 (SP progression)",
    "fig9_sp_breakdown": "Fig. 9 (SP breakdown)",
    "ablation_truncation": "Ablation: truncation solver",
    "ablation_adaptation": "Ablation: adaptation strategy",
    "ablation_alpha": "Ablation: growth factor alpha",
    "ablation_subspace_sweeps": "Ablation: subspace sweeps",
    "ablation_tree_split": "Ablation: tree shape",
    "ablation_llsv_kernels": "Ablation: LLSV kernels",
    "ablation_mode_order": "Ablation: STHOSVD mode order",
    "weak_scaling": "Extension: weak scaling",
    "grid_search": "Extension: exhaustive grid search",
    "memory_sizing": "Extension: single-node memory sizing",
    "memory_peak_scaling": "Extension: peak-memory scaling",
    "roofline": "Extension: kernel roofline",
    "machine_sensitivity": "Extension: machine-model sensitivity",
    "decompression": "Extension: region decompression",
    "crossover": "Analysis: section 3.1 n/r crossover",
}


def main() -> int:
    print("Running the full benchmark harness ...\n")
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest",
            str(ROOT / "benchmarks"), "--benchmark-only", "-q",
        ],
        cwd=ROOT,
    )

    results = ROOT / "results"
    print("\n=== reproduction index ===")
    width = max(len(v) for v in EXPERIMENTS.values())
    for stem, label in EXPERIMENTS.items():
        path = results / f"{stem}.txt"
        status = "ok" if path.exists() else "MISSING"
        print(f"  {label.ljust(width)}  results/{stem}.txt  [{status}]")
    # Assemble the machine-generated companion report.
    from repro.analysis.report import generate_report

    report = generate_report(results)
    (results / "REPORT.md").write_text(report)
    print(f"\nFull regenerated report: {results / 'REPORT.md'}")
    print(
        "Benchmark exit code:",
        proc.returncode,
        "(0 = all paper-shape assertions held)",
    )
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
